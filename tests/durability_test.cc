// End-to-end durability acceptance tests: populate a table whose page
// count exceeds the buffer-pool frame budget (evictions observed), crash
// or close the Database, reopen from the data file + WAL + checkpoint,
// and verify committed records survive while uncommitted ones are gone.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/key_encoding.h"
#include "src/engine/engine.h"
#include "src/io/checkpoint.h"

namespace plp {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  DurabilityTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_durability_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  ~DurabilityTest() override { std::filesystem::remove_all(dir_); }

  EngineConfig MakeConfig(std::size_t frame_budget = 16) {
    EngineConfig config;
    config.design = SystemDesign::kConventional;
    config.db.data_dir = dir_.string();
    config.db.frame_budget = frame_budget;
    config.db.txn.durable_commits = true;
    return config;
  }

  static std::string Payload(std::uint32_t k) {
    // ~200 bytes so a handful of records fill a page.
    return "value-" + std::to_string(k) + "-" + std::string(192, 'p');
  }

  static Status InsertOne(Engine* engine, std::uint32_t k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    req.Add(0, "t", key, [key, k](ExecContext& ctx) {
      return ctx.Insert(key, Payload(k));
    });
    return engine->Execute(req);
  }

  static std::string ReadOne(Engine* engine, std::uint32_t k) {
    TxnRequest req;
    const std::string key = KeyU32(k);
    auto payload = std::make_shared<std::string>();
    req.Add(0, "t", key, [key, payload](ExecContext& ctx) {
      return ctx.Read(key, payload.get());
    });
    if (!engine->Execute(req).ok()) return "<not found>";
    return *payload;
  }

  std::filesystem::path dir_;
};

constexpr std::uint32_t kRecords = 1500;

TEST_F(DurabilityTest, EvictThenCrashThenRecover) {
  {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok())
        << engine->db().open_status().ToString();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

    for (std::uint32_t k = 0; k < kRecords; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
    }
    // The working set must have exceeded the 16-frame budget.
    EXPECT_GT(engine->db().pool()->num_pages(), 0u);
    EXPECT_GT(engine->db().pool()->evictions(), 0u)
        << "table must be larger than the frame budget";
    EXPECT_GT(engine->db().pool()->disk_writes(), 0u);

    // A transaction that aborts: its writes must not surface after
    // restart even though some of its pages may have been stolen.
    {
      TxnRequest req;
      const std::string key = KeyU32(999999);
      req.Add(0, "t", key, [key](ExecContext& ctx) {
        PLP_RETURN_IF_ERROR(ctx.Insert(key, "doomed"));
        return Status::Aborted("simulated failure");
      });
      EXPECT_FALSE(engine->Execute(req).ok());
    }
    engine->Stop();
    // Crash: the engine (and Database) are destroyed without Close().
  }

  auto created = CreateEngine(MakeConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  // Catalog recovered the table.
  ASSERT_NE(engine->db().GetTable("t"), nullptr);

  for (std::uint32_t k = 0; k < kRecords; k += 7) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  EXPECT_EQ(ReadOne(engine.get(), 999999), "<not found>")
      << "aborted transaction leaked through restart";

  // The reopened pool still enforces the budget while serving reads.
  EXPECT_GT(engine->db().pool()->disk_reads(), 0u);

  // And the database stays writable after recovery.
  ASSERT_TRUE(InsertOne(engine.get(), kRecords + 1).ok());
  EXPECT_EQ(ReadOne(engine.get(), kRecords + 1), Payload(kRecords + 1));
  engine->Stop();
  ASSERT_TRUE(engine->db().Close().ok());
}

TEST_F(DurabilityTest, CleanCloseReopensWithMinimalReplay) {
  {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    for (std::uint32_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    engine->Stop();
    ASSERT_TRUE(engine->db().Close().ok());
  }
  auto created = CreateEngine(MakeConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  // A clean close checkpointed with an empty dirty-page table, so the
  // restart scan starts at (or after) the final checkpoint: no redo work.
  EXPECT_EQ(engine->db().recovery_stats().redo_ops, 0u);
  for (std::uint32_t k = 0; k < 300; k += 11) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  engine->Stop();
}

TEST_F(DurabilityTest, CheckpointBoundsReplayAfterCrash) {
  Lsn scan_start_floor = 0;
  {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    for (std::uint32_t k = 0; k < 400; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    ASSERT_TRUE(engine->db().Checkpoint().ok());
    scan_start_floor = engine->db().log()->durable_lsn();
    for (std::uint32_t k = 400; k < 500; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    engine->Stop();  // crash
  }
  auto created = CreateEngine(MakeConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  // The restart scan began at the checkpoint's dirty-page horizon, far
  // past the log's beginning (400 transactions came before it).
  EXPECT_GT(engine->db().recovery_stats().scan_start, 0u);
  for (std::uint32_t k = 0; k < 500; k += 13) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  engine->Stop();
}

TEST_F(DurabilityTest, UpdatesAndDeletesSurviveRestart) {
  {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    for (std::uint32_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    // Update half, delete a quarter.
    for (std::uint32_t k = 0; k < 200; k += 2) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      req.Add(0, "t", key, [key, k](ExecContext& ctx) {
        return ctx.Update(key, "updated-" + std::to_string(k));
      });
      ASSERT_TRUE(engine->Execute(req).ok());
    }
    for (std::uint32_t k = 1; k < 200; k += 4) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      req.Add(0, "t", key, [key](ExecContext& ctx) {
        return ctx.Delete(key);
      });
      ASSERT_TRUE(engine->Execute(req).ok());
    }
    engine->Stop();  // crash
  }
  auto created = CreateEngine(MakeConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok());
  for (std::uint32_t k = 0; k < 200; ++k) {
    const std::string got = ReadOne(engine.get(), k);
    if (k % 2 == 0) {
      EXPECT_EQ(got, "updated-" + std::to_string(k)) << k;
    } else if (k % 4 == 1) {
      EXPECT_EQ(got, "<not found>") << k;
    } else {
      EXPECT_EQ(got, Payload(k)) << k;
    }
  }
  engine->Stop();
}

// Acceptance property of the persistent-index subsystem: a checkpoint
// carries NO serialized index nodes — its payload is O(dirty pages +
// active txns + partition metadata), independent of index size.
TEST_F(DurabilityTest, CheckpointPayloadExcludesIndexNodes) {
  auto created = CreateEngine(MakeConfig(/*frame_budget=*/64));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
  constexpr std::uint32_t kMany = 2000;
  for (std::uint32_t k = 0; k < kMany; ++k) {
    ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
  }
  ASSERT_TRUE(engine->db().Checkpoint().ok());

  Lsn ckpt_lsn = 0;
  ASSERT_TRUE(
      ReadMasterRecord((dir_ / "CHECKPOINT").string(), &ckpt_lsn).ok());
  std::string payload;
  ASSERT_TRUE(engine->db()
                  .log()
                  ->ScanFrom(ckpt_lsn,
                             [&](Lsn lsn, const LogRecord& rec) {
                               if (lsn == ckpt_lsn &&
                                   rec.type == LogType::kCheckpoint) {
                                 payload = rec.redo;
                               }
                             })
                  .ok());
  ASSERT_FALSE(payload.empty());
  CheckpointImage image;
  ASSERT_TRUE(CheckpointImage::Decode(payload, &image).ok());

  // No index snapshot; only the tiny partition-table baseline.
  EXPECT_TRUE(image.tables.empty());
  ASSERT_EQ(image.partitions.size(), 1u);
  EXPECT_EQ(image.partitions[0].parts.size(), 1u);  // single partition

  // Payload size is bounded by the dirty-page + txn tables, nowhere near
  // what serializing 2000 index entries (~20KB+) would need.
  const std::size_t bound = 512 + 16 * image.dirty_pages.size() +
                            16 * image.active_txns.size();
  EXPECT_LT(payload.size(), bound)
      << "checkpoint payload grew with index size";

  engine->Stop();
  ASSERT_TRUE(engine->db().Close().ok());
}

// The legacy snapshot mode stays available (bench comparison) and still
// recovers; its checkpoint payload demonstrably scales with the index.
TEST_F(DurabilityTest, SnapshotModeStillRecoversAndScalesWithIndex) {
  EngineConfig config = MakeConfig();
  config.db.index_durability = IndexDurability::kSnapshot;
  {
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    for (std::uint32_t k = 0; k < 500; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    ASSERT_TRUE(engine->db().Checkpoint().ok());

    Lsn ckpt_lsn = 0;
    ASSERT_TRUE(
        ReadMasterRecord((dir_ / "CHECKPOINT").string(), &ckpt_lsn).ok());
    std::string payload;
    ASSERT_TRUE(engine->db()
                    .log()
                    ->ScanFrom(ckpt_lsn,
                               [&](Lsn lsn, const LogRecord& rec) {
                                 if (lsn == ckpt_lsn &&
                                     rec.type == LogType::kCheckpoint) {
                                   payload = rec.redo;
                                 }
                               })
                    .ok());
    CheckpointImage image;
    ASSERT_TRUE(CheckpointImage::Decode(payload, &image).ok());
    ASSERT_EQ(image.tables.size(), 1u);
    EXPECT_EQ(image.tables[0].entries.size(), 500u);
    EXPECT_GT(payload.size(), 500u * 6u);  // snapshot scales with entries

    for (std::uint32_t k = 500; k < 600; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    engine->Stop();  // crash
  }
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  for (std::uint32_t k = 0; k < 600; k += 17) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  engine->Stop();
}

// PLP-Leaf durable crash/restart: leaf splits move heap records at
// runtime (logged as system moves with the copy -> re-point -> release
// protocol); after a crash every committed record must stay reachable
// and heap-page owner tags are re-derived from the recovered leaves.
TEST_F(DurabilityTest, PlpLeafOwnedSurvivesCrashWithLeafSplits) {
  EngineConfig config;
  config.design = SystemDesign::kPlpLeaf;
  config.num_workers = 2;
  config.db.data_dir = dir_.string();
  config.db.frame_budget = 64;
  config.db.txn.durable_commits = true;
  constexpr std::uint32_t kN = 3000;
  {
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok());
    ASSERT_TRUE(engine->CreateTable("t", {"", KeyU32(kN / 2)}).ok());
    for (std::uint32_t k = 0; k < kN; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
    }
    // ~200-byte payloads across 600 keys force many leaf splits (and
    // therefore logged heap-record moves).
    EXPECT_GT(engine->db().GetTable("t")->primary()->smo_count(), 0u);
    engine->Stop();  // crash
  }
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();  // attaches the recovered table, re-tags heap owners
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  Table* table = engine->db().GetTable("t");
  ASSERT_NE(table, nullptr);
  // Partition assignments survived.
  const auto boundaries = table->primary()->boundaries();
  ASSERT_EQ(boundaries.size(), 2u);
  EXPECT_EQ(boundaries[1], KeyU32(kN / 2));
  EXPECT_TRUE(table->primary()->CheckIntegrity().ok());
  for (std::uint32_t k = 0; k < kN; ++k) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  // Still writable after recovery (more splits on recovered leaves).
  for (std::uint32_t k = kN; k < kN + 100; ++k) {
    ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  engine->Stop();
}

TEST_F(DurabilityTest, RepeatedCrashReopenCycles) {
  // State accretes across several crash/reopen generations; every
  // generation must see everything all earlier generations committed.
  for (std::uint32_t gen = 0; gen < 4; ++gen) {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok())
        << "gen " << gen << ": " << engine->db().open_status().ToString();
    if (gen == 0) {
      ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    }
    for (std::uint32_t k = 0; k < gen * 100; k += 9) {
      EXPECT_EQ(ReadOne(engine.get(), k), Payload(k))
          << "gen " << gen << " key " << k;
    }
    for (std::uint32_t k = gen * 100; k < (gen + 1) * 100; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok());
    }
    if (gen % 2 == 0) {
      ASSERT_TRUE(engine->db().Checkpoint().ok());
    }
    engine->Stop();  // crash every generation
  }
}

// Secondary indexes are volatile (rebuilt on reopen), so evicting one of
// their dirty pages steals a slot in data.db. Those slots used to leak
// forever; they are now flagged volatile on disk, returned to the
// DiskManager free-slot list on eviction/drop, and reclaimed at the next
// open. `buffer_pool.leaked_index_slots` stays registered as a tripwire
// and must read 0 under eviction pressure.
TEST_F(DurabilityTest, EvictedSecondaryPagesDoNotLeakIndexSlots) {
  auto created = CreateEngine(MakeConfig(/*frame_budget=*/16));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  auto table = engine->CreateTable("t", {""});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  // Secondary key = full payload, so index pages fill (and evict) fast.
  ASSERT_TRUE(table.value()
                  ->AddSecondary("by_payload",
                                 [](Slice, Slice payload) {
                                   return std::string(payload.data(),
                                                      payload.size());
                                 })
                  .ok());
  for (std::uint32_t k = 0; k < kRecords; ++k) {
    ASSERT_TRUE(InsertOne(engine.get(), k).ok());
  }
  const StatsSnapshot stats = engine->GetStats();
  EXPECT_GT(stats.counter("buffer_pool.evictions"), 0u);
  EXPECT_EQ(stats.counter("buffer_pool.leaked_index_slots"), 0u);
  engine->Stop();
}

// Tentpole regression: once a warm-up pass has swizzled the resident
// subtree, repeated point lookups resolve every root-to-leaf hop through
// tagged frame references. Metrics prove the page table is out of the hot
// path: swizzle.hits grows with each descent while buffer_pool.hits and
// buffer_pool.misses stay flat (a clustered table keeps heap pages out of
// the read path, so the only fixes a descent could do are index ones).
TEST_F(DurabilityTest, HotDescentResolvesThroughSwizzledRefs) {
  auto created = CreateEngine(MakeConfig(/*frame_budget=*/0));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}, /*clustered=*/true).ok());
  for (std::uint32_t k = 0; k < kRecords; ++k) {
    ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
  }
  // Warm-up descents install the swizzled child refs.
  for (std::uint32_t k = 0; k < kRecords; k += 3) {
    ASSERT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  // Let the page cleaner drain the insert dirt: its write-backs unswizzle
  // the flushed parents (consistent on-disk snapshot), so wait it out and
  // then re-warm to reinstall before measuring.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (std::uint32_t k = 0; k < kRecords; k += 3) {
    ASSERT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }

  const StatsSnapshot warm = engine->GetStats();
  ASSERT_GT(warm.counter("swizzle.installs"), 0u);
  ASSERT_GT(warm.gauge("buffer_pool.swizzled"), 0);

  constexpr std::uint32_t kHotReads = 500;
  for (std::uint32_t i = 0; i < kHotReads; ++i) {
    const std::uint32_t k = (i * 17) % kRecords;
    ASSERT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }

  const StatsSnapshot hot = engine->GetStats();
  // Every hot descent resolved at least one child hop via a tagged ref...
  EXPECT_GE(hot.counter("swizzle.hits"),
            warm.counter("swizzle.hits") + kHotReads);
  // ...and never touched the page table: zero additional lookups, hit or
  // miss.
  EXPECT_EQ(hot.counter("buffer_pool.hits"), warm.counter("buffer_pool.hits"));
  EXPECT_EQ(hot.counter("buffer_pool.misses"),
            warm.counter("buffer_pool.misses"));
  engine->Stop();
  ASSERT_TRUE(engine->db().Close().ok());
}

// Regression (Database::Checkpoint was unserialized): two interleaved
// checkpoints could publish master records out of order — a slow
// checkpoint overwriting CHECKPOINT with an older LSN *after* a faster
// one had already truncated the WAL segments that older record's restart
// scan would need. Hammer Checkpoint() from several threads against a
// live insert stream, crash, and verify the reopened database still
// recovers every committed record.
TEST_F(DurabilityTest, ConcurrentCheckpointsKeepMasterAndFloorConsistent) {
  constexpr std::uint32_t kInserted = 600;
  {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

    std::atomic<bool> stop{false};
    std::atomic<std::uint32_t> checkpoint_failures{0};
    std::vector<std::thread> checkpointers;
    for (int t = 0; t < 4; ++t) {
      checkpointers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          if (!engine->db().Checkpoint().ok()) {
            checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::uint32_t k = 0; k < kInserted; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
    }
    stop.store(true, std::memory_order_release);
    for (auto& th : checkpointers) th.join();
    EXPECT_EQ(checkpoint_failures.load(), 0u);
    engine->Stop();  // crash: no Close()
  }

  auto created = CreateEngine(MakeConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  for (std::uint32_t k = 0; k < kInserted; k += 7) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  engine->Stop();
}

// Regression (Database::Close read `closed_` unguarded): two racing
// closers could both observe closed_ == false and each run the full
// flush + final-checkpoint sequence. Close from four threads: all must
// return OK, exactly one final checkpoint must run, and the reopened
// database must be clean.
TEST_F(DurabilityTest, ConcurrentCloseRunsShutdownOnce) {
  constexpr std::uint32_t kInserted = 100;
  {
    auto created = CreateEngine(MakeConfig());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    for (std::uint32_t k = 0; k < kInserted; ++k) {
      ASSERT_TRUE(InsertOne(engine.get(), k).ok()) << k;
    }
    engine->Stop();

    std::atomic<std::uint32_t> failures{0};
    std::vector<std::thread> closers;
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&] {
        if (!engine->db().Close().ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : closers) th.join();
    EXPECT_EQ(failures.load(), 0u);
    // Exactly one closer ran the shutdown sequence.
    EXPECT_EQ(engine->GetStats().counter("checkpoint.count"), 1u);
  }

  auto created = CreateEngine(MakeConfig());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->db().open_status().ok())
      << engine->db().open_status().ToString();
  // Clean close: restart replays nothing.
  EXPECT_EQ(engine->db().recovery_stats().redo_ops, 0u);
  for (std::uint32_t k = 0; k < kInserted; k += 7) {
    EXPECT_EQ(ReadOne(engine.get(), k), Payload(k)) << k;
  }
  engine->Stop();
}

}  // namespace
}  // namespace plp
