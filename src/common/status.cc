#include "src/common/status.h"

namespace plp {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNoSpace: return "NoSpace";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kRetry: return "Retry";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace plp
