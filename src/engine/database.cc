#include "src/engine/database.h"

namespace plp {

Table::Table(std::uint32_t id, TableConfig config, BufferPool* pool)
    : id_(id), config_(std::move(config)), pool_(pool) {
  heap_ = std::make_unique<HeapFile>(pool, config_.heap_mode);
  std::unique_ptr<MRBTree> tree;
  Status st = MRBTree::Create(pool, config_.index_policy,
                              config_.index_boundaries, &tree);
  // TableConfig boundaries are validated by CreateTable before we get here.
  (void)st;
  primary_ = std::move(tree);
}

Status Table::AddSecondary(const std::string& name, SecondaryKeyFn key_fn) {
  if (secondary(name) != nullptr) {
    return Status::AlreadyExists("secondary index " + name);
  }
  auto sec = std::make_unique<Secondary>();
  sec->name = name;
  sec->key_fn = std::move(key_fn);
  // Non-partition-aligned secondary indexes are accessed as in the
  // conventional system: latched, single-rooted (Appendix E).
  sec->index = std::make_unique<BTree>(pool_, LatchPolicy::kLatched);
  secondaries_.push_back(std::move(sec));
  return Status::OK();
}

Table::Secondary* Table::secondary(const std::string& name) {
  for (auto& sec : secondaries_) {
    if (sec->name == name) return sec.get();
  }
  return nullptr;
}

std::vector<Table::Secondary*> Table::secondaries() {
  std::vector<Secondary*> out;
  out.reserve(secondaries_.size());
  for (auto& sec : secondaries_) out.push_back(sec.get());
  return out;
}

Database::Database(DatabaseConfig config)
    : log_(config.log), txns_(&log_, &locks_, config.txn) {}

Result<Table*> Database::CreateTable(TableConfig config) {
  if (config.name.empty()) {
    return Status::InvalidArgument("table name required");
  }
  if (config.index_boundaries.empty() ||
      !config.index_boundaries.front().empty()) {
    return Status::InvalidArgument(
        "index_boundaries[0] must be the empty (-inf) key");
  }
  catalog_mu_.lock();
  if (by_name_.count(config.name) > 0) {
    catalog_mu_.unlock();
    return Status::AlreadyExists("table " + config.name);
  }
  const auto id = static_cast<std::uint32_t>(tables_.size());
  auto table = std::make_unique<Table>(id, std::move(config), &pool_);
  Table* raw = table.get();
  tables_.push_back(std::move(table));
  by_name_.emplace(raw->name(), raw);
  catalog_mu_.unlock();
  return raw;
}

Table* Database::GetTable(const std::string& name) {
  catalog_mu_.lock();
  auto it = by_name_.find(name);
  Table* t = it == by_name_.end() ? nullptr : it->second;
  catalog_mu_.unlock();
  return t;
}

std::vector<Table*> Database::tables() {
  catalog_mu_.lock();
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (auto& t : tables_) out.push_back(t.get());
  catalog_mu_.unlock();
  return out;
}

}  // namespace plp
