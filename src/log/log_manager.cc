#include "src/log/log_manager.h"

namespace plp {

LogManager::LogManager(LogConfig config) : config_(config) {
  LogBuffer::Sink sink;
  if (config_.retain_for_recovery) {
    sink = [this](const char* data, std::size_t size) {
      std::lock_guard<std::mutex> g(retained_mu_);
      retained_.append(data, size);
    };
  }
  buffer_ = std::make_unique<LogBuffer>(config_.buffer_size, std::move(sink));
}

Lsn LogManager::Append(const LogRecord& record) {
  return buffer_->Append(record.Serialize());
}

Status LogManager::Scan(const std::function<void(Lsn, const LogRecord&)>& fn) {
  if (!config_.retain_for_recovery) {
    return Status::NotSupported("log not retained; set retain_for_recovery");
  }
  buffer_->FlushAll();
  std::lock_guard<std::mutex> g(retained_mu_);
  std::size_t off = 0;
  while (off < retained_.size()) {
    LogRecord rec;
    std::size_t consumed = 0;
    if (!LogRecord::Deserialize(retained_.data() + off, retained_.size() - off,
                                &rec, &consumed)) {
      return Status::Corruption("truncated log record at offset " +
                                std::to_string(off));
    }
    fn(static_cast<Lsn>(off), rec);
    off += consumed;
  }
  return Status::OK();
}

}  // namespace plp
