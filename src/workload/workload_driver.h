// Multi-threaded workload driver: N client threads submit transactions to
// an engine for a fixed duration, with critical-section deltas and
// optional throughput time-series captured around the run.
#ifndef PLP_WORKLOAD_WORKLOAD_DRIVER_H_
#define PLP_WORKLOAD_WORKLOAD_DRIVER_H_

#include <chrono>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine.h"
#include "src/metrics/throughput_probe.h"
#include "src/sync/cs_profiler.h"

namespace plp {

struct DriverOptions {
  int num_threads = 4;
  std::chrono::milliseconds duration{1000};
  std::uint64_t seed = 1;
  /// Open-loop pipelined mode: when > 0, each client thread keeps up to
  /// this many transactions in flight through Engine::Submit instead of
  /// blocking on Execute, reaping the oldest handle once the window is
  /// full. 0 keeps the classic closed loop.
  int pipeline_depth = 0;
  /// Submit every Nth transaction per client with TxnOptions::trace so its
  /// stage timeline lands in the flight recorder (kTxnStage spans). 0 means
  /// auto: every 64th when PLP_TRACE_PATH is set, otherwise none. At the
  /// end of the run the driver exports the recorder's Chrome trace to
  /// PLP_TRACE_PATH when that variable is set.
  int trace_every = 0;
};

struct DriverResult {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t elapsed_ns = 0;       // wall time of the window
  std::uint64_t thread_time_ns = 0;   // summed across client threads
  /// Engine-wide admission-gate high-water mark over the window (how many
  /// transactions were concurrently in flight).
  std::uint64_t peak_inflight = 0;
  CsCounts cs_delta;                  // profiler delta over the window
  /// Per-transaction latencies (ns), sorted ascending. Closed loop:
  /// Execute() round trips. Open loop: submit-to-completion latency,
  /// including time queued behind the pipeline window.
  std::vector<std::uint64_t> latencies_ns;

  /// Latency percentile in microseconds (q in [0,1]); 0 when no samples.
  double latency_us(double q) const {
    if (latencies_ns.empty()) return 0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ns.size() - 1));
    return static_cast<double>(latencies_ns[idx]) / 1000.0;
  }
  double p50_us() const { return latency_us(0.50); }
  double p99_us() const { return latency_us(0.99); }

  double ktps() const {
    return elapsed_ns == 0
               ? 0
               : static_cast<double>(committed) /
                     (static_cast<double>(elapsed_ns) / 1e9) / 1000.0;
  }
  double cs_per_txn() const {
    return committed == 0 ? 0
                          : static_cast<double>(cs_delta.TotalEntries()) /
                                static_cast<double>(committed);
  }
  double contended_cs_per_txn() const {
    return committed == 0 ? 0
                          : static_cast<double>(cs_delta.TotalContended()) /
                                static_cast<double>(committed);
  }
  double latches_per_txn() const {
    return committed == 0 ? 0
                          : static_cast<double>(cs_delta.TotalLatches()) /
                                static_cast<double>(committed);
  }
};

/// Generates the next transaction for a client thread.
using TxnFactory = std::function<TxnRequest(Rng&)>;

/// Runs the workload for `options.duration`. Aborted transactions are
/// counted and the client moves on (no retry), as in the paper's drivers.
/// With `options.pipeline_depth > 0` the clients run open-loop through
/// Engine::Submit (see DriverOptions).
DriverResult RunWorkload(Engine* engine, const TxnFactory& next,
                         const DriverOptions& options);

/// Same, but also samples throughput every `sample_interval` into `probe`
/// and invokes `at` callbacks at their scheduled offsets (used by the
/// repartitioning experiment to flip skew and trigger rebalancing).
struct TimedEvent {
  std::chrono::milliseconds at;
  std::function<void()> fn;
};
DriverResult RunWorkloadTimed(Engine* engine, const TxnFactory& next,
                              const DriverOptions& options,
                              std::chrono::milliseconds sample_interval,
                              ThroughputProbe* probe,
                              std::vector<TimedEvent> events);

}  // namespace plp

#endif  // PLP_WORKLOAD_WORKLOAD_DRIVER_H_
