// Hot-spot rebalancing scenario (the "slashdot effect" of Section 3.2.1):
// a read workload suddenly concentrates on 10% of the key space; the
// automatic repartitioner detects the imbalance and slices the hot
// MRBTree partition — while the system keeps serving transactions.
//
//   $ ./example_hotspot_rebalancing
#include <cstdio>

#include "src/common/key_encoding.h"
#include "src/engine/partitioned_engine.h"
#include "src/engine/repartitioner.h"
#include "src/workload/microbench.h"
#include "src/workload/workload_driver.h"

using namespace plp;  // NOLINT — example brevity

int main() {
  EngineConfig config;
  config.design = SystemDesign::kPlpRegular;
  config.num_workers = 4;
  PartitionedEngine engine(config);
  engine.Start();

  BalanceProbeConfig probe_config;
  probe_config.subscribers = 20000;
  probe_config.record_size = 200;
  probe_config.partitions = 4;
  BalanceProbe workload(&engine, probe_config);
  if (Status st = workload.Load(); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  Table* table = engine.db().GetTable(BalanceProbe::kTable);

  auto print_boundaries = [&](const char* when) {
    std::printf("%s partition boundaries:", when);
    for (const auto& b : engine.pm().Boundaries(table)) {
      std::printf(" %u", b.empty() ? 0 : DecodeU32(b));
    }
    std::printf("\n");
  };
  print_boundaries("before");

  // Background rebalancer, as a production deployment would run it.
  RepartitionerOptions reb_options;
  reb_options.min_samples = 2000;
  reb_options.imbalance_factor = 1.8;
  reb_options.interval = std::chrono::milliseconds(100);
  Repartitioner rebalancer(&engine, reb_options);
  rebalancer.Start();

  DriverOptions options;
  options.num_threads = 2;
  options.duration = std::chrono::milliseconds(2500);
  ThroughputProbe probe;
  DriverResult r = RunWorkloadTimed(
      &engine, [&](Rng& rng) { return workload.NextTransaction(rng); },
      options, std::chrono::milliseconds(250), &probe,
      {{std::chrono::milliseconds(800), [&] {
          std::printf("  >> skew flips: 50%% of probes now hit the first "
                      "10%% of keys\n");
          workload.SetSkew(true, 0.1);
        }}});
  rebalancer.Stop();

  std::printf("\nthroughput series (Ktps per 250ms window):\n ");
  for (const auto& s : probe.samples()) std::printf(" %6.1f", s.ktps);
  std::printf("\ncommitted: %llu, rebalances performed: %llu\n",
              static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(rebalancer.rebalances()));
  print_boundaries("after");
  std::printf("(a new boundary inside the hot range means the rebalancer\n"
              " sliced the hot partition — cheap under PLP: metadata only)\n");

  engine.Stop();
  return 0;
}
