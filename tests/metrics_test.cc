// Tests for the metrics layer: the engine-wide registry plus the older
// time-breakdown and throughput-probe instruments.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/metrics/registry.h"
#include "src/metrics/throughput_probe.h"
#include "src/metrics/time_breakdown.h"
#include "src/metrics/txn_trace.h"

namespace plp {
namespace {

TEST(TimeBreakdownTest, CalibrationIsPositiveAndStable) {
  const double a = CalibratedLatchCostNs();
  const double b = CalibratedLatchCostNs();
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);  // memoized
  EXPECT_LT(a, 10000.0);  // an uncontended latch is well under 10us
}

TEST(TimeBreakdownTest, ZeroTransactionsGiveEmptyBreakdown) {
  CsCounts delta;
  const TimeBreakdown b = MakeTimeBreakdown(delta, 0, 1000000);
  EXPECT_EQ(b.total_us, 0.0);
}

TEST(TimeBreakdownTest, ComponentsAttributeCorrectly) {
  CsCounts delta;
  delta.latch_wait_ns[static_cast<int>(PageClass::kIndex)] = 4'000'000;
  delta.latch_wait_ns[static_cast<int>(PageClass::kHeap)] = 2'000'000;
  delta.wait_ns[static_cast<int>(CsCategory::kPageLatch)] = 6'000'000;
  delta.wait_ns[static_cast<int>(CsCategory::kLockMgr)] = 1'000'000;
  const TimeBreakdown b = MakeTimeBreakdown(delta, 1000, 100'000'000);
  EXPECT_DOUBLE_EQ(b.total_us, 100.0);
  EXPECT_DOUBLE_EQ(b.idx_latch_wait_us, 4.0);
  EXPECT_DOUBLE_EQ(b.heap_latch_wait_us, 2.0);
  EXPECT_DOUBLE_EQ(b.lock_wait_us, 1.0);
  EXPECT_DOUBLE_EQ(b.smo_wait_us, 0.0);  // fully classed latch waits
  EXPECT_GT(b.other_us, 0.0);
}

TEST(TimeBreakdownTest, SmoWaitIsUnclassedLatchWait) {
  CsCounts delta;
  // 3ms of page-latch-category waiting, only 1ms attributable to index
  // pages: the remaining 2ms is SMO-mutex serialization.
  delta.wait_ns[static_cast<int>(CsCategory::kPageLatch)] = 3'000'000;
  delta.latch_wait_ns[static_cast<int>(PageClass::kIndex)] = 1'000'000;
  const TimeBreakdown b = MakeTimeBreakdown(delta, 1000, 50'000'000);
  EXPECT_DOUBLE_EQ(b.idx_latch_wait_us, 1.0);
  EXPECT_DOUBLE_EQ(b.smo_wait_us, 2.0);
}

TEST(TimeBreakdownTest, LatchingOverheadScalesWithCount) {
  CsCounts delta;
  delta.latches[static_cast<int>(PageClass::kIndex)] = 10000;
  const TimeBreakdown small = MakeTimeBreakdown(delta, 1000, 100'000'000);
  delta.latches[static_cast<int>(PageClass::kIndex)] = 20000;
  const TimeBreakdown big = MakeTimeBreakdown(delta, 1000, 100'000'000);
  EXPECT_NEAR(big.latching_us, 2 * small.latching_us, 1e-9);
}

TEST(TimeBreakdownTest, FormatContainsAllColumns) {
  const TimeBreakdown b;
  const std::string row = FormatBreakdownRow("TestRow", b);
  for (const char* col : {"TestRow", "total", "idx-wait", "heap-wait",
                          "latching", "lock-wait", "smo-wait", "other"}) {
    EXPECT_NE(row.find(col), std::string::npos) << col;
  }
}

TEST(ThroughputProbeTest, SamplesMeasureWindowRate) {
  ThroughputProbe probe;
  probe.Start();
  for (int i = 0; i < 1000; ++i) probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  probe.SampleNow();
  ASSERT_EQ(probe.samples().size(), 1u);
  const auto& s = probe.samples()[0];
  EXPECT_GT(s.at_seconds, 0.0);
  EXPECT_GT(s.ktps, 0.0);
  // 1000 ticks in ~50ms -> ~20 Ktps.
  EXPECT_NEAR(s.ktps, 20.0, 15.0);
}

TEST(ThroughputProbeTest, SecondWindowCountsOnlyNewTicks) {
  ThroughputProbe probe;
  probe.Start();
  for (int i = 0; i < 100; ++i) probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  probe.SampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  probe.SampleNow();  // no ticks in the second window
  ASSERT_EQ(probe.samples().size(), 2u);
  EXPECT_GT(probe.samples()[0].ktps, 0.0);
  EXPECT_DOUBLE_EQ(probe.samples()[1].ktps, 0.0);
  EXPECT_EQ(probe.total(), 100u);
}

TEST(ThroughputProbeTest, StartResets) {
  ThroughputProbe probe;
  probe.Start();
  probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  probe.SampleNow();
  probe.Start();
  EXPECT_TRUE(probe.samples().empty());
  EXPECT_EQ(probe.total(), 0u);
}

TEST(ThroughputProbeTest, ConcurrentTickers) {
  ThroughputProbe probe;
  probe.Start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) probe.Tick();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(probe.total(), 40000u);
}

TEST(ThroughputProbeTest, BoundRegistryPublishesWindowGauges) {
  MetricsRegistry registry;
  ThroughputProbe probe;
  probe.BindRegistry(&registry);
  probe.Start();
  for (int i = 0; i < 500; ++i) probe.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  probe.SampleNow();
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.gauge("probe.window_tps"), 0);
  EXPECT_EQ(snap.gauge("probe.total_txns"), 500);
  EXPECT_EQ(snap.gauge("probe.samples"), 1);
}

TEST(TimeBreakdownTest, PublishBreakdownSetsGauges) {
  MetricsRegistry registry;
  TimeBreakdown b;
  b.total_us = 123.7;
  b.lock_wait_us = 5.2;
  PublishBreakdown(&registry, "breakdown", b);
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauge("breakdown.total_us"), 123);
  EXPECT_EQ(snap.gauge("breakdown.lock_wait_us"), 5);
  EXPECT_EQ(snap.gauge("breakdown.other_us"), 0);
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistryTest, CounterNamesAreStableCreateOrGet) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.Snapshot().counter("x"), 3u);
  EXPECT_EQ(registry.Snapshot().counter("missing"), 0u);
}

TEST(MetricsRegistryTest, ConcurrentWritersLoseNothing) {
  MetricsRegistry registry;
  Counter* c = registry.counter("hammer");
  Histogram* h = registry.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::atomic<bool> stop{false};
  // A reader snapshotting concurrently must see monotonically
  // non-decreasing counts, and never more than the eventual total.
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const StatsSnapshot snap = registry.Snapshot();
      const std::uint64_t now = snap.counter("hammer");
      EXPECT_GE(now, last);
      EXPECT_LE(now, static_cast<std::uint64_t>(kThreads) * kPerThread);
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<std::uint64_t>(t) * 100 + 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("hammer"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSummary* lat = snap.histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(lat->max, 701u);
}

TEST(MetricsRegistryTest, ResetDuringWritesNeverResurrects) {
  MetricsRegistry registry;
  Counter* c = registry.counter("reset_target");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c->Increment();
    });
  }
  // Racing resets: because writers use fetch_add (never load+store), a
  // reset can only miss in-flight increments, never bring old ones back.
  for (int i = 0; i < 200; ++i) registry.Reset();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  // All writers stopped: one final reset must stick at exactly zero.
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  c->Add(7);
  EXPECT_EQ(registry.Snapshot().counter("reset_target"), 7u);
}

TEST(MetricsRegistryTest, HistogramPercentilesBracketValues) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  // 90 fast ops at ~100us, 10 slow at ~6000us.
  for (int i = 0; i < 90; ++i) h->Record(100);
  for (int i = 0; i < 10; ++i) h->Record(6000);
  const HistogramSummary s = h->Collect();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u * 100 + 10u * 6000);
  EXPECT_EQ(s.max, 6000u);
  // Log2 buckets: estimates are upper bounds of the value's bucket,
  // clamped to max — p50 lands in [100, 200), p99 at the max.
  EXPECT_GE(s.p50, 100u);
  EXPECT_LT(s.p50, 256u);
  EXPECT_EQ(s.p99, 6000u);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_NEAR(s.mean(), 690.0, 1e-9);
}

TEST(MetricsRegistryTest, GaugeProvidersEvaluateAtSnapshot) {
  MetricsRegistry registry;
  int calls = 0;
  registry.RegisterGaugeProvider(&calls, [&calls](const GaugeSink& sink) {
    ++calls;
    sink("dynamic.value", 41 + calls);
  });
  EXPECT_EQ(registry.Snapshot().gauge("dynamic.value"), 42);
  EXPECT_EQ(registry.Snapshot().gauge("dynamic.value"), 43);
  registry.UnregisterGaugeProvider(&calls);
  EXPECT_EQ(registry.Snapshot().gauge("dynamic.value"), 0);
  EXPECT_EQ(calls, 2);
}

TEST(MetricsRegistryTest, SerializersCoverAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("c.one")->Add(5);
  registry.gauge("g.level")->Set(-3);
  registry.histogram("h.lat_us")->Record(250);
  const StatsSnapshot snap = registry.Snapshot();
  const std::string text = snap.ToText();
  for (const char* needle : {"c.one", "g.level", "h.lat_us"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"c.one\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.level\": -3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, ScratchIsANullSinkThatNeverAliases) {
  MetricsRegistry* scratch = MetricsRegistry::Scratch();
  ASSERT_NE(scratch, nullptr);
  EXPECT_EQ(scratch, MetricsRegistry::Scratch());
  // Recording into scratch is safe and side-effect free for real
  // registries.
  scratch->counter("anything")->Increment();
  MetricsRegistry real;
  EXPECT_EQ(real.Snapshot().counter("anything"), 0u);
}

TEST(TxnTimelineTest, StampIsFirstWriterWins) {
  TxnTimeline t;
  TxnTimeline::Stamp(t.submit_ns, 100);
  TxnTimeline::Stamp(t.submit_ns, 999);  // later stamps are no-ops
  EXPECT_EQ(t.submit_ns.load(), 100u);
}

TEST(TxnTimelineTest, SinksRecordOnlyReachedStages) {
  MetricsRegistry registry;
  TxnTraceSinks sinks(&registry);
  TxnTimeline t;
  // submit -> admitted -> complete, with the middle stages never stamped
  // (e.g. an admission-rejected or non-durable transaction).
  TxnTimeline::Stamp(t.submit_ns, 1'000);
  TxnTimeline::Stamp(t.admitted_ns, 5'000);
  TxnTimeline::Stamp(t.complete_ns, 21'000);
  sinks.Record(t);
  const StatsSnapshot snap = registry.Snapshot();
  const HistogramSummary* admission =
      snap.histogram("trace.admission_us");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->count, 1u);
  EXPECT_EQ(admission->max, 4u);  // (5000 - 1000) ns -> 4us
  const HistogramSummary* total = snap.histogram("trace.total_us");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 1u);
  EXPECT_EQ(total->max, 20u);
  // Unstamped stages recorded nothing.
  EXPECT_EQ(snap.histogram("trace.fsync_us")->count, 0u);
  EXPECT_EQ(snap.histogram("trace.execute_us")->count, 0u);
}

TEST(StatsSnapshotTest, DeltaSinceSubtractsCounters) {
  MetricsRegistry registry;
  Counter* c = registry.counter("txn.commits");
  c->Add(100);
  const StatsSnapshot base = registry.Snapshot();
  c->Add(42);
  registry.gauge("admission.inflight")->Set(7);
  const StatsSnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counter("txn.commits"), 42u);
  // Gauges are point-in-time: the delta carries the current value.
  EXPECT_EQ(delta.gauge("admission.inflight"), 7);
}

TEST(StatsSnapshotTest, DeltaSinceClampsAfterReset) {
  // A Reset() between the baseline and the later snapshot would make the
  // subtraction go negative; DeltaSince clamps to the current value
  // instead of wrapping to a huge unsigned number.
  MetricsRegistry registry;
  Counter* c = registry.counter("txn.commits");
  c->Add(100);
  const StatsSnapshot base = registry.Snapshot();
  registry.Reset();
  c->Add(5);
  const StatsSnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counter("txn.commits"), 5u);
}

TEST(StatsSnapshotTest, DeltaSinceWindowsHistograms) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("log.fsync_us");
  // Load phase: a thousand fast syncs that a window report must exclude.
  for (int i = 0; i < 1000; ++i) h->Record(2);
  const StatsSnapshot base = registry.Snapshot();
  // Measurement window: a hundred slow ones.
  for (int i = 0; i < 100; ++i) h->Record(5000);
  const StatsSnapshot delta = registry.Snapshot().DeltaSince(base);
  const HistogramSummary* s = delta.histogram("log.fsync_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 100u);
  EXPECT_EQ(s->sum, 100u * 5000u);
  // Percentiles recompute over the window's buckets alone: every sample
  // in the window was 5000us, so p50 must land in its bucket, far above
  // the load phase's 2us floor.
  EXPECT_GE(s->p50, 4096u);
  EXPECT_GE(s->max, 5000u);
  // The cumulative snapshot still sees everything.
  const HistogramSummary* cumulative =
      registry.Snapshot().histogram("log.fsync_us");
  EXPECT_EQ(cumulative->count, 1100u);
}

TEST(StatsSnapshotTest, DeltaSinceEmptyWindowIsZero) {
  MetricsRegistry registry;
  registry.histogram("log.fsync_us")->Record(300);
  registry.counter("txn.commits")->Add(9);
  const StatsSnapshot base = registry.Snapshot();
  const StatsSnapshot delta = registry.Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counter("txn.commits"), 0u);
  const HistogramSummary* s = delta.histogram("log.fsync_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 0u);
  EXPECT_EQ(s->sum, 0u);
  EXPECT_EQ(s->max, 0u);
  EXPECT_EQ(s->p99, 0u);
}

}  // namespace
}  // namespace plp
