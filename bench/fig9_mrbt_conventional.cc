// Figure 9 (Appendix B): peak TATP throughput of the conventional and
// logically-partitioned systems with and without MRBTree indexes. The
// multi-rooted form removes one index level and the root hotspot,
// buying ~10% in the paper.
#include "bench/bench_common.h"
#include "src/workload/tatp.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader("TATP throughput: Normal vs MRBT primary indexes",
                     "Figure 9");
  std::printf("%-12s %10s %10s %10s\n", "design", "Normal", "MRBT", "gain");
  for (SystemDesign design :
       {SystemDesign::kConventional, SystemDesign::kLogical}) {
    double ktps[2] = {0, 0};
    for (int mrbt = 0; mrbt < 2; ++mrbt) {
      auto engine = bench::MakeEngine(design, 4, /*use_mrbt=*/mrbt == 1);
      TatpConfig config;
      config.subscribers = 20000;
      config.partitions = 8;
      TatpWorkload tatp(engine.get(), config);
      if (!tatp.Load().ok()) continue;
      DriverOptions options;
      options.num_threads = 4;
      options.duration = bench::WindowMs();
      DriverResult r = RunWorkload(
          engine.get(), [&](Rng& rng) { return tatp.NextTransaction(rng); },
          options);
      ktps[mrbt] = r.ktps();
      engine->Stop();
    }
    std::printf("%-12s %10.1f %10.1f %9.1f%%\n", SystemDesignName(design),
                ktps[0], ktps[1],
                ktps[0] > 0 ? 100.0 * (ktps[1] - ktps[0]) / ktps[0] : 0.0);
  }
  std::printf(
      "\nExpected shape: MRBT wins on both systems (paper: ~10%%, from\n"
      "one-level-shallower probes and reduced root contention).\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
