// Execution-engine interface: the five system designs of Section 4.1
// behind one API, so workloads and benchmarks are design-agnostic.
#ifndef PLP_ENGINE_ENGINE_H_
#define PLP_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/action.h"
#include "src/engine/database.h"

namespace plp {

enum class SystemDesign {
  kConventional,   // thread-per-transaction, central locking (+ optional SLI)
  kLogical,        // logical-only partitioning (DORA): no locking, latched pages
  kPlpRegular,     // PLP: latch-free index, shared (latched) heap
  kPlpPartition,   // PLP: latch-free index + partition-owned heap pages
  kPlpLeaf,        // PLP: latch-free index + leaf-owned heap pages
};

const char* SystemDesignName(SystemDesign d);

struct EngineConfig {
  SystemDesign design = SystemDesign::kConventional;
  /// Partition worker threads (partitioned designs).
  int num_workers = 4;
  /// Multi-rooted primary indexes for the conventional/logical designs
  /// (Appendix B compares "Normal" vs "MRBT"). PLP designs always use the
  /// MRBTree, with one sub-tree per logical partition.
  bool use_mrbt = false;
  /// Speculative Lock Inheritance in the conventional design.
  bool enable_sli = true;
  DatabaseConfig db;
};

class Engine {
 public:
  explicit Engine(EngineConfig config) : config_(config), db_(config.db) {}
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one transaction to commit or abort.
  virtual Status Execute(TxnRequest& req) = 0;

  virtual void Start() {}
  virtual void Stop() {}

  /// Creates a table partitioned at `boundaries` (first entry must be "").
  /// The engine maps the logical partitioning onto the design-appropriate
  /// physical layout. With `clustered`, records live in the index leaves
  /// (no heap file; Appendix C.2).
  virtual Result<Table*> CreateTable(const std::string& name,
                                     std::vector<std::string> boundaries,
                                     bool clustered = false) = 0;

  /// Rebalances the table to the new boundary set. Conventional: no-op.
  /// Logical: routing update only. PLP: MRBTree slice/meld (+ heap record
  /// movement for the owned heap modes).
  virtual Status Repartition(const std::string& table,
                             const std::vector<std::string>& boundaries) {
    (void)table;
    (void)boundaries;
    return Status::OK();
  }

  Database& db() { return db_; }
  const EngineConfig& config() const { return config_; }
  SystemDesign design() const { return config_.design; }

 protected:
  EngineConfig config_;
  Database db_;
};

/// Builds the engine for a design.
std::unique_ptr<Engine> CreateEngine(EngineConfig config);

}  // namespace plp

#endif  // PLP_ENGINE_ENGINE_H_
