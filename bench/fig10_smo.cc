// Figure 10 (Appendix B): time breakdown of a probe/insert microbenchmark
// on the conventional system as the insert percentage grows, with a
// Normal (single-rooted) vs MRBT primary index. Single-rooted ARIES/KVL
// trees allow one SMO at a time, so SMO waiting grows with the insert
// rate; MRBTrees parallelize SMOs across sub-trees.
#include "bench/bench_common.h"
#include "src/metrics/time_breakdown.h"
#include "src/workload/microbench.h"

namespace plp {
namespace {

void Run() {
  bench::PrintHeader(
      "Time breakdown vs insert %, conventional: Normal vs MRBT",
      "Figure 10");
  for (unsigned insert_pct : {0u, 20u, 40u, 60u, 80u, 100u}) {
    std::printf("--- %u%% inserts ---\n", insert_pct);
    for (bool use_mrbt : {false, true}) {
      auto engine =
          bench::MakeEngine(SystemDesign::kConventional, 4, use_mrbt);
      ProbeInsertConfig config;
      config.initial_rows = 20000;
      config.partitions = 8;
      config.insert_pct = insert_pct;
      ProbeInsertMix micro(engine.get(), config);
      if (!micro.Load().ok()) continue;
      DriverOptions options;
      options.num_threads = 4;
      options.duration = bench::WindowMs();
      DriverResult r = RunWorkload(
          engine.get(), [&](Rng& rng) { return micro.NextTransaction(rng); },
          options);
      TimeBreakdown b =
          MakeTimeBreakdown(r.cs_delta, r.committed, r.thread_time_ns);
      std::printf("%s\n",
                  FormatBreakdownRow(use_mrbt ? "MRBT" : "Normal", b)
                      .c_str());
      engine->Stop();
    }
  }
  std::printf(
      "\nExpected shape: smo-wait + idx-wait grow with the insert rate for\n"
      "Normal; MRBT flattens them (paper: up to 25%% better at high insert\n"
      "rates thanks to parallel SMOs).\n");
}

}  // namespace
}  // namespace plp

int main() {
  plp::Run();
  return 0;
}
