#include "src/index/btree.h"

#include <cassert>
#include <cstring>

#include "src/metrics/flight_recorder.h"

#include "src/index/persistent/index_log.h"

namespace plp {

namespace {
std::string PidValue(PageId pid) {
  return std::string(reinterpret_cast<const char*>(&pid), sizeof(PageId));
}
}  // namespace

BTree::BTree(BufferPool* pool, LatchPolicy policy, IndexLogger* logger)
    : pool_(pool), policy_(policy), logger_(logger) {
  PageRef root = NewNodePage(/*level=*/0);
  root_ = root->id();
  // The empty root must be recoverable before any mutation references it.
  if (logger_ != nullptr) logger_->Smo({root.get()});
}

BTree::BTree(BufferPool* pool, LatchPolicy policy, PageId root,
             IndexLogger* logger)
    : pool_(pool), policy_(policy), root_(root), logger_(logger) {}

PageRef BTree::FixPage(PageId id) {
  // Latched mode charges the buffer-pool critical section; latch-free
  // partitions own their pages and skip it. In durable (evicting) mode the
  // returned ref pins the frame, which both keeps the pointer alive across
  // the operation and closes the modify->log window: an unpinned frame
  // could be stolen between the byte change and the WAL append.
  return pool_->AcquirePage(id, /*tracked=*/policy_ == LatchPolicy::kLatched);
}

PageRef BTree::NewNodePage(std::uint16_t level) {
  PageRef page = pool_->AllocatePage(PageClass::kIndex, UINT32_MAX,
                                     /*volatile_index=*/logger_ == nullptr);
  BTreeNode::Init(page->data(), level);
  page->set_owner_tag(owner_tag_);
  return page;
}

PageRef BTree::FixRoot() {
  Page* cached = root_frame_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->id() == root_) {
    const bool pin = pool_->evicting();
    if (pin) cached->Pin();
    // Sticky frames are never stolen, so the cached pointer stays valid;
    // the only way the mapping moves is a root_ change (slice/meld),
    // which quiesces the tree and resets this cache first.
    return PageRef(cached, pin);
  }
  PageRef ref = FixPage(root_);
  if (ref && pool_->swizzling_enabled()) {
    ref->set_sticky(true);
    root_frame_.store(ref.get(), std::memory_order_release);
  }
  return ref;
}

void BTree::ResetRootCache() {
  Page* old = root_frame_.exchange(nullptr, std::memory_order_acq_rel);
  if (old != nullptr) old->set_sticky(false);
}

PageRef BTree::FixChildFor(Page* parent, Slice key) {
  BTreeNode node(parent->data());
  if (!pool_->swizzling_enabled() || policy_ != LatchPolicy::kLatched) {
    return FixPage(Plain(node.ChildFor(key)));
  }
  int slot = 0;
  const PageId ref = node.ChildRefFor(key, &slot);
  if (IsSwizzledRef(ref)) {
    // Hot path: the parent latch we hold excludes the unswizzle protocol
    // (which takes it exclusively), so the frame behind the reference is
    // resident and current — resolve it with zero page-table lookups.
    Page* child = pool_->SwizzledFrame(ref);
    pool_->NoteSwizzleHit();
    child->SetRef();
    const bool pin = pool_->evicting();
    if (pin) child->Pin();
    return PageRef(child, pin);
  }
  PageRef child = FixPage(ref);
  if (child && child->frame_index() != Page::kNoFrameIndex &&
      child->TrySetSwizzleParent(parent->id())) {
    const PageId tagged = SwizzleRef(child->frame_index());
    if (node.CasChildRef(slot, ref, tagged)) {
      // Never MarkDirty: the tagged value is a runtime-only encoding,
      // sanitized out of every image that leaves the pool.
      pool_->NoteSwizzleInstalled();
    } else if (node.ChildRefAt(slot) != tagged) {
      // Lost the CAS to something other than a concurrent install of the
      // same reference — roll the marker back (only if it is still ours).
      child->ClearSwizzleParentIf(parent->id());
    }
  }
  return child;
}

void BTree::SanitizeScope(SmoScope* scope) {
  if (!pool_->swizzling_enabled()) return;
  for (Page* p : scope->touched) BTreeNode::UnswizzleAll(p, pool_);
}

void BTree::LogSmoScope(SmoScope* scope) {
  if (logger_ != nullptr && !scope->touched.empty()) {
    SanitizeScope(scope);
    logger_->Smo(scope->touched);
  }
}

PageId BTree::LeafFor(Slice key) {
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    cur = FixPage(Plain(node.ChildFor(key)));
    node = BTreeNode(cur->data());
  }
  return cur->id();
}

void BTree::ApplyLeafMovedHook(Page* leaf, int from, PageId new_leaf) {
  if (!leaf_moved_hook_) return;
  BTreeNode node(leaf->data());
  for (int i = from; i < node.count(); ++i) {
    const std::string key = node.KeyAt(i).ToString();
    const std::string old_value = node.ValueAt(i).ToString();
    // 1. Copy the heap record to a page owned by the new leaf (the hook
    //    logs a system insert in durable mode).
    const std::string new_value = leaf_moved_hook_(key, old_value, new_leaf);
    if (new_value.empty()) continue;
    // 2. Re-point the index entry where it currently lives, and log the
    //    re-point before the old location can be released: every WAL
    //    prefix keeps the record reachable (copy-only -> old RID valid;
    //    re-point -> new RID valid; release last).
    Status st = node.SetValueAt(i, new_value);
    assert(st.ok());  // RID values are fixed-size: replacement fits
    (void)st;
    if (logger_ != nullptr) {
      logger_->LeafUpdate(kInvalidTxnId, leaf, key, new_value, old_value);
    }
    // 3. Release the old heap location (logged system delete in durable
    //    mode).
    if (leaf_moved_release_hook_) leaf_moved_release_hook_(old_value);
  }
  leaf->MarkDirty();
}

void BTree::RetagPages(std::uint32_t owner) {
  owner_tag_ = owner;
  struct Walker {
    BTree* tree;
    std::uint32_t owner;
    void Walk(PageId pid) {
      PageRef page = tree->FixPage(pid);
      if (!page) return;
      page->set_owner_tag(owner);
      BTreeNode node(page->data());
      if (node.is_leaf()) return;
      if (node.leftmost_child() != kInvalidPageId) {
        Walk(tree->Plain(node.leftmost_child()));
      }
      for (int i = 0; i < node.count(); ++i) Walk(tree->Plain(node.ChildAt(i)));
    }
  };
  Walker{this, owner}.Walk(root_);
}

int BTree::height() {
  PageRef root = FixRoot();
  return BTreeNode(root->data()).level() + 1;
}

void BTree::RecountEntries() {
  std::uint64_t n = 0;
  ForEachEntry([&](Slice, Slice) { ++n; });
  num_entries_.store(n, std::memory_order_relaxed);
}

Status BTree::Insert(Slice key, Slice value, TxnId txn) {
  bool needs_smo = false;
  Status st = InsertOptimistic(key, value, txn, &needs_smo);
  if (!needs_smo) return st;
  return InsertPessimistic(key, value, txn);
}

Status BTree::InsertOptimistic(Slice key, Slice value, TxnId txn,
                               bool* needs_smo) {
  TraceSiteScope trace_site(TraceSite::kBtreeDescent);
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  LatchMode mode =
      node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
  if (policy_ == LatchPolicy::kLatched) cur->latch().Acquire(mode);
  node = BTreeNode(cur->data());  // re-read under latch

  while (!node.is_leaf()) {
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);
    PageRef child = FixChildFor(cur.get(), key);
    BTreeNode child_node(child->data());
    const LatchMode child_mode =
        child_node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().Acquire(child_mode);
      cur->latch().Release(mode);
    }
    cur = std::move(child);
    mode = child_mode;
    node = BTreeNode(cur->data());
  }
  nodes_visited_.fetch_add(1, std::memory_order_relaxed);

  const int pos = node.LowerBound(key);
  if (pos < node.count() && node.KeyAt(pos) == key) {
    if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
    return Status::AlreadyExists();
  }
  Status st = node.InsertAt(pos, key, value);
  if (st.ok()) {
    cur->MarkDirty();
    num_entries_.fetch_add(1, std::memory_order_relaxed);
    // Latch-coupled logging: the record is appended (and the page LSN
    // stamped) before the latch/pin are released.
    if (logger_ != nullptr) logger_->LeafInsert(txn, cur.get(), key, value);
    if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
    return Status::OK();
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
  *needs_smo = true;
  return Status::OK();
}

Status BTree::InsertPessimistic(Slice key, Slice value, TxnId txn) {
  TraceSiteScope trace_site(TraceSite::kBtreeDescent);
  // ARIES/KVL: one SMO at a time per (sub-)tree.
  const bool latched = policy_ == LatchPolicy::kLatched;
  if (latched) smo_mu_.lock();

  std::vector<PageRef> path;
  path.push_back(FixRoot());
  if (latched) path.back()->latch().AcquireExclusive();
  BTreeNode node(path.back()->data());
  while (!node.is_leaf()) {
    PageRef child = FixChildFor(path.back().get(), key);
    if (latched) child->latch().AcquireExclusive();
    path.push_back(std::move(child));
    node = BTreeNode(path.back()->data());
  }

  auto unlock_all = [&] {
    if (latched) {
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        (*it)->latch().ReleaseExclusive();
      }
      smo_mu_.unlock();
    }
  };

  // Re-check for a duplicate inserted since the optimistic pass.
  {
    const int pos = node.LowerBound(key);
    if (pos < node.count() && node.KeyAt(pos) == key) {
      unlock_all();
      return Status::AlreadyExists();
    }
  }

  // Insert, splitting up the path as needed. The leaf-level iteration runs
  // first, so `target_leaf` (the page that received the client key) is
  // always set before any separator bubbles upward.
  SmoScope scope;
  Page* target_leaf = nullptr;
  std::string ins_key = key.ToString();
  std::string ins_val = value.ToString();
  int i = static_cast<int>(path.size()) - 1;
  while (true) {
    const bool at_leaf = i == static_cast<int>(path.size()) - 1;
    Page* page = path[static_cast<std::size_t>(i)].get();
    BTreeNode n(page->data());
    const int pos = n.LowerBound(ins_key);
    if (n.InsertAt(pos, ins_key, ins_val).ok()) {
      page->MarkDirty();
      if (at_leaf) {
        target_leaf = page;
      } else {
        scope.Touch(page);  // separator landed here: part of the SMO
      }
      break;
    }
    if (i == 0) {
      // Full root: split in place (the root page id never changes).
      SplitRoot(page, &scope);
      BTreeNode r(page->data());
      PageRef target = FixPage(Plain(r.ChildFor(ins_key)));
      BTreeNode tn(target->data());
      Status st = tn.InsertAt(tn.LowerBound(ins_key), ins_key, ins_val);
      assert(st.ok());
      (void)st;
      target->MarkDirty();
      scope.Touch(target.get());
      if (at_leaf) target_leaf = target.get();
      scope.refs.push_back(std::move(target));
      break;
    }
    std::string sep;
    Page* right = SplitNode(page, &sep, &scope);
    Page* target = Slice(ins_key).compare(sep) >= 0 ? right : page;
    BTreeNode tn(target->data());
    Status st = tn.InsertAt(tn.LowerBound(ins_key), ins_key, ins_val);
    assert(st.ok());
    (void)st;
    target->MarkDirty();
    if (at_leaf) target_leaf = target;
    // Bubble the separator into the parent.
    ins_key = sep;
    ins_val = PidValue(right->id());
    --i;
  }

  num_entries_.fetch_add(1, std::memory_order_relaxed);
  if (logger_ != nullptr) {
    // Anchor first, SMO images second: a crash between them leaves the
    // anchor replayable (tolerant no-space skip against the pre-SMO page)
    // while the transaction — whose commit record can only follow the SMO
    // record — is necessarily a loser. The reverse order could make an
    // uncommitted key durable with no undo anchor.
    assert(target_leaf != nullptr);
    logger_->LeafInsert(txn, target_leaf, key, value);
    LogSmoScope(&scope);
  }
  unlock_all();
  return Status::OK();
}

Page* BTree::SplitNode(Page* page, std::string* sep, SmoScope* scope) {
  TraceSiteScope trace_site(TraceSite::kBtreeSmo);
  BTreeNode node(page->data());
  const int mid = node.count() / 2;
  PageRef right = NewNodePage(node.level());
  Page* right_raw = right.get();
  BTreeNode rnode(right->data());
  if (node.is_leaf()) {
    ApplyLeafMovedHook(page, mid, right->id());
    node.MoveTail(mid, &rnode);
    *sep = rnode.KeyAt(0).ToString();
    rnode.set_next(node.next());
    node.set_next(right->id());
  } else {
    // Child refs are about to move to the right node: unswizzle first so
    // no tagged reference crosses pages (a swizzle lives only in the page
    // the child's marker names).
    if (pool_->swizzling_enabled()) BTreeNode::UnswizzleAll(page, pool_);
    *sep = node.KeyAt(mid).ToString();
    rnode.set_leftmost_child(node.ChildAt(mid));
    node.MoveTail(mid + 1, &rnode);
    node.RemoveAt(mid);
  }
  right->MarkDirty();
  page->MarkDirty();
  scope->Touch(page);
  scope->Touch(right_raw);
  scope->refs.push_back(std::move(right));
  smo_count_.fetch_add(1, std::memory_order_relaxed);
  return right_raw;
}

void BTree::SplitRoot(Page* root_page, SmoScope* scope) {
  TraceSiteScope trace_site(TraceSite::kBtreeSmo);
  BTreeNode node(root_page->data());
  // Clone the root's contents into a fresh left child, split the clone,
  // and turn the root into an internal node over the two halves. The
  // byte-copy would duplicate tagged refs into a page their markers do
  // not name — unswizzle the root first.
  if (pool_->swizzling_enabled()) BTreeNode::UnswizzleAll(root_page, pool_);
  PageRef left = pool_->AllocatePage(PageClass::kIndex, UINT32_MAX,
                                     /*volatile_index=*/logger_ == nullptr);
  left->set_owner_tag(owner_tag_);
  std::memcpy(left->data(), root_page->data(), kPageSize);
  std::string sep;
  Page* right = SplitNode(left.get(), &sep, scope);
  const std::uint16_t new_level = node.level() + 1;
  BTreeNode::Init(root_page->data(), new_level);
  BTreeNode r(root_page->data());
  r.set_leftmost_child(left->id());
  Status st = r.InsertAt(0, sep, PidValue(right->id()));
  assert(st.ok());
  (void)st;
  left->MarkDirty();
  root_page->MarkDirty();
  scope->Touch(left.get());
  scope->Touch(root_page);
  scope->refs.push_back(std::move(left));
}

Status BTree::Probe(Slice key, std::string* value) {
  TraceSiteScope trace_site(TraceSite::kBtreeDescent);
  PageRef cur = FixRoot();
  if (policy_ == LatchPolicy::kLatched) cur->latch().AcquireShared();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);
    PageRef child = FixChildFor(cur.get(), key);
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().AcquireShared();
      cur->latch().ReleaseShared();
    }
    cur = std::move(child);
    node = BTreeNode(cur->data());
  }
  nodes_visited_.fetch_add(1, std::memory_order_relaxed);
  const int pos = node.Find(key);
  Status st = Status::OK();
  if (pos < 0) {
    st = Status::NotFound();
  } else {
    Slice v = node.ValueAt(pos);
    value->assign(v.data(), v.size());
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().ReleaseShared();
  return st;
}

Status BTree::Update(Slice key, Slice value, TxnId txn) {
  TraceSiteScope trace_site(TraceSite::kBtreeDescent);
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  LatchMode mode =
      node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
  if (policy_ == LatchPolicy::kLatched) cur->latch().Acquire(mode);
  node = BTreeNode(cur->data());
  while (!node.is_leaf()) {
    PageRef child = FixChildFor(cur.get(), key);
    BTreeNode child_node(child->data());
    const LatchMode child_mode =
        child_node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().Acquire(child_mode);
      cur->latch().Release(mode);
    }
    cur = std::move(child);
    mode = child_mode;
    node = BTreeNode(cur->data());
  }
  const int pos = node.Find(key);
  if (pos < 0) {
    if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
    return Status::NotFound();
  }
  const std::string old_value = node.ValueAt(pos).ToString();
  Status st = node.SetValueAt(pos, value);
  if (st.ok()) {
    cur->MarkDirty();
    if (logger_ != nullptr) {
      logger_->LeafUpdate(txn, cur.get(), key, value, old_value);
    }
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
  if (st.IsNoSpace()) {
    // Rare: a grown value no longer fits on the leaf. Re-insert through the
    // SMO path (delete + insert; not atomic w.r.t. concurrent readers of
    // this one key, which our single-writer-per-key workloads tolerate).
    PLP_RETURN_IF_ERROR(Delete(key, txn));
    return Insert(key, value, txn);
  }
  return st;
}

Status BTree::Delete(Slice key, TxnId txn) {
  TraceSiteScope trace_site(TraceSite::kBtreeDescent);
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  LatchMode mode =
      node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
  if (policy_ == LatchPolicy::kLatched) cur->latch().Acquire(mode);
  node = BTreeNode(cur->data());
  while (!node.is_leaf()) {
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);
    PageRef child = FixChildFor(cur.get(), key);
    BTreeNode child_node(child->data());
    const LatchMode child_mode =
        child_node.is_leaf_relaxed() ? LatchMode::kExclusive : LatchMode::kShared;
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().Acquire(child_mode);
      cur->latch().Release(mode);
    }
    cur = std::move(child);
    mode = child_mode;
    node = BTreeNode(cur->data());
  }
  nodes_visited_.fetch_add(1, std::memory_order_relaxed);
  const int pos = node.Find(key);
  Status st = Status::OK();
  if (pos < 0) {
    st = Status::NotFound();
  } else {
    const std::string old_value = node.ValueAt(pos).ToString();
    node.RemoveAt(pos);
    cur->MarkDirty();
    num_entries_.fetch_sub(1, std::memory_order_relaxed);
    if (logger_ != nullptr) {
      logger_->LeafDelete(txn, cur.get(), key, old_value);
    }
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().Release(mode);
  return st;
}

Status BTree::ScanFrom(Slice start,
                       const std::function<bool(Slice, Slice)>& fn) {
  TraceSiteScope trace_site(TraceSite::kBtreeDescent);
  PageRef cur = FixRoot();
  if (policy_ == LatchPolicy::kLatched) cur->latch().AcquireShared();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    PageRef child = FixChildFor(cur.get(), start);
    if (policy_ == LatchPolicy::kLatched) {
      child->latch().AcquireShared();
      cur->latch().ReleaseShared();
    }
    cur = std::move(child);
    node = BTreeNode(cur->data());
  }
  int pos = node.LowerBound(start);
  for (;;) {
    if (pos >= node.count()) {
      const PageId next = node.next();
      if (next == kInvalidPageId) break;
      PageRef np = FixPage(next);
      if (!np) break;
      if (policy_ == LatchPolicy::kLatched) {
        np->latch().AcquireShared();
        cur->latch().ReleaseShared();
      }
      cur = std::move(np);
      node = BTreeNode(cur->data());
      pos = 0;
      continue;
    }
    if (!fn(node.KeyAt(pos), node.ValueAt(pos))) break;
    ++pos;
  }
  if (policy_ == LatchPolicy::kLatched) cur->latch().ReleaseShared();
  return Status::OK();
}

PageId BTree::LeftmostLeaf() {
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    const PageId child = node.count() > 0 || node.leftmost_child() != kInvalidPageId
                             ? node.leftmost_child()
                             : kInvalidPageId;
    cur = FixPage(Plain(child));
    node = BTreeNode(cur->data());
  }
  return cur->id();
}

PageId BTree::RightmostLeaf() {
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    const PageId child = node.count() > 0 ? node.ChildAt(node.count() - 1)
                                          : node.leftmost_child();
    cur = FixPage(Plain(child));
    node = BTreeNode(cur->data());
  }
  return cur->id();
}

Status BTree::SliceOff(plp::Slice split_key, std::unique_ptr<BTree>* right_out,
                       const PartitionPayloadFn& parts) {
  TraceSiteScope trace_site(TraceSite::kBtreeSmo);
  // Recursively split the spine containing `split_key`; entries (and
  // sub-trees) at or above the key move to newly allocated right-side
  // nodes (Appendix A.3.2). Runs quiesced: no latches needed.
  SmoScope scope;
  struct Slicer {
    BTree* tree;
    plp::Slice key;
    SmoScope* scope;

    PageId SlicePage(PageId pid) {
      PageRef page = tree->FixPage(pid);
      BTreeNode node(page->data());
      PageRef right = tree->NewNodePage(node.level());
      Page* right_raw = right.get();
      BTreeNode rnode(right->data());
      if (node.is_leaf()) {
        const int pos = node.LowerBound(key);
        tree->ApplyLeafMovedHook(page.get(), pos, right_raw->id());
        node.MoveTail(pos, &rnode);
        rnode.set_next(node.next());
        node.set_next(kInvalidPageId);
      } else {
        // Entries move across pages below: drop this node's swizzles up
        // front so only plain ids are recursed on, moved, or logged.
        if (tree->pool_->swizzling_enabled()) {
          BTreeNode::UnswizzleAll(page.get(), tree->pool_);
        }
        const int pos = node.UpperBound(key);
        const PageId child =
            pos == 0 ? node.leftmost_child() : node.ChildAt(pos - 1);
        const PageId right_child = SlicePage(child);
        rnode.set_leftmost_child(right_child);
        node.MoveTail(pos, &rnode);
      }
      page->MarkDirty();
      right->MarkDirty();
      scope->Touch(page.get());
      scope->Touch(right_raw);
      scope->refs.push_back(std::move(page));
      scope->refs.push_back(std::move(right));
      return right_raw->id();
    }
  };

  Slicer slicer{this, split_key, &scope};
  PageId right_root = slicer.SlicePage(root_);

  // Identify degenerate right-root chain pages (internal nodes with no
  // separators). They are trimmed only AFTER the slice record is logged.
  std::vector<PageId> trim;
  for (;;) {
    PageRef rp = FixPage(right_root);
    BTreeNode rn(rp->data());
    if (rn.is_leaf() || rn.count() > 0) break;
    trim.push_back(right_root);
    right_root = Plain(rn.leftmost_child());
  }

  // ONE atomic record for the whole slice: page images (trimmed empties
  // ride along harmlessly) plus — via `parts` — the post-slice partition
  // table, so a crash cannot separate the data movement from the routing
  // change. Forced before returning: the repartition is durable once the
  // caller proceeds.
  if (logger_ != nullptr) {
    SanitizeScope(&scope);
    const Lsn lsn = parts ? logger_->SmoWithPartitions(scope.touched,
                                                       parts(right_root))
                          : logger_->Smo(scope.touched);
    logger_->log()->FlushTo(lsn);
  }
  scope.refs.clear();  // release pins before any page is freed

  for (PageId pid : trim) {
    pool_->FreePage(pid);
    if (logger_ != nullptr) logger_->PageFree(pid);
  }

  auto right = std::unique_ptr<BTree>(
      new BTree(pool_, policy_, right_root, logger_));
  // Recount entries on both sides (slice moves a key range wholesale).
  std::uint64_t right_count = 0;
  right->ForEachEntry([&](plp::Slice, plp::Slice) { ++right_count; });
  right->num_entries_.store(right_count, std::memory_order_relaxed);
  num_entries_.fetch_sub(right_count, std::memory_order_relaxed);
  smo_count_.fetch_add(1, std::memory_order_relaxed);
  *right_out = std::move(right);
  return Status::OK();
}

Status BTree::Meld(BTree* right, plp::Slice boundary_key,
                   const PartitionPayloadFn& parts) {
  TraceSiteScope trace_site(TraceSite::kBtreeSmo);
  SmoScope scope;
  PageId to_free = kInvalidPageId;

  // Both roots may stop being roots here (and root_ may change): drop the
  // root-frame caches and their sticky bits up front. Runs quiesced.
  ResetRootCache();
  right->ResetRootCache();

  // Stitch the leaf chains first.
  {
    PageRef rl = FixPage(RightmostLeaf());
    BTreeNode rln(rl->data());
    rln.set_next(right->LeftmostLeaf());
    rl->MarkDirty();
    scope.Touch(rl.get());
    scope.refs.push_back(std::move(rl));
  }

  const int hl = height();
  const int hr = right->height();
  PageRef lroot = FixPage(root_);
  PageRef rroot = FixPage(right->root_);
  BTreeNode ln(lroot->data());
  BTreeNode rn(rroot->data());

  auto fallback_new_root = [&]() {
    const std::uint16_t level =
        static_cast<std::uint16_t>(std::max(hl, hr));
    PageRef nroot = NewNodePage(level);
    BTreeNode nn(nroot->data());
    nn.set_leftmost_child(root_);
    Status st = nn.InsertAt(0, boundary_key, PidValue(right->root_));
    assert(st.ok());
    (void)st;
    nroot->MarkDirty();
    root_ = nroot->id();
    scope.Touch(nroot.get());
    scope.refs.push_back(std::move(nroot));
  };

  if (hl == hr) {
    // Same height: append the right root's entries onto the left root
    // (Appendix A.3.1, case 1).
    bool merged = false;
    if (ln.is_leaf()) {
      merged = ln.AppendAll(rn).ok();
      if (merged) ln.set_next(rn.next());
    } else {
      // The right root's entries move onto the left root: plain ids only.
      if (pool_->swizzling_enabled()) {
        BTreeNode::UnswizzleAll(rroot.get(), pool_);
      }
      const std::size_t need = 4 + boundary_key.size() + sizeof(PageId) +
                               BTreeNode::kSlotSize;
      if (ln.TotalFreeSpace() >= need &&
          ln.InsertAt(ln.count(), boundary_key,
                      PidValue(rn.leftmost_child()))
              .ok()) {
        if (ln.AppendAll(rn).ok()) {
          merged = true;
        } else {
          ln.RemoveAt(ln.count() - 1);  // roll back the boundary entry
        }
      }
    }
    if (merged) {
      lroot->MarkDirty();
      scope.Touch(lroot.get());
      to_free = right->root_;
    } else {
      fallback_new_root();
    }
  } else if (hl > hr) {
    // Taller left: hang the right root off the left tree's rightmost node
    // at level hr (Appendix A.3.1, case 2).
    PageRef cur = FixPage(root_);
    BTreeNode node(cur->data());
    while (node.level() > hr) {
      const PageId child = node.count() > 0 ? node.ChildAt(node.count() - 1)
                                            : node.leftmost_child();
      cur = FixPage(Plain(child));
      node = BTreeNode(cur->data());
    }
    if (node.InsertAt(node.count(), boundary_key, PidValue(right->root_))
            .ok()) {
      cur->MarkDirty();
      scope.Touch(cur.get());
      scope.refs.push_back(std::move(cur));
    } else {
      fallback_new_root();
    }
  } else {
    // Taller right: hang the left tree off the right tree's leftmost node
    // at level hl (Appendix A.3.1, case 3); the merged root is the right
    // tree's root.
    PageRef cur = FixPage(right->root_);
    BTreeNode node(cur->data());
    while (node.level() > hl) {
      cur = FixPage(Plain(node.leftmost_child()));
      node = BTreeNode(cur->data());
    }
    // The leftmost ref moves into a regular cell below: plain ids only.
    if (pool_->swizzling_enabled()) BTreeNode::UnswizzleAll(cur.get(), pool_);
    const PageId old_leftmost = node.leftmost_child();
    if (node.InsertAt(0, boundary_key, PidValue(old_leftmost)).ok()) {
      node.set_leftmost_child(root_);
      cur->MarkDirty();
      root_ = right->root_;
      scope.Touch(cur.get());
      scope.refs.push_back(std::move(cur));
    } else {
      fallback_new_root();
    }
  }

  // ONE atomic record for the meld: images plus the post-merge partition
  // table. Forced before the absorbed root (a pre-existing page a replay
  // of the OLD partition table would still reference) is freed — freeing
  // a referenced disk slot before the routing change is durable would
  // lose the right partition's keys on crash.
  if (logger_ != nullptr) {
    SanitizeScope(&scope);
    const Lsn lsn = parts ? logger_->SmoWithPartitions(scope.touched,
                                                       parts(root_))
                          : logger_->Smo(scope.touched);
    logger_->log()->FlushTo(lsn);
  }
  scope.refs.clear();
  lroot.Reset();
  rroot.Reset();
  if (to_free != kInvalidPageId) {
    pool_->FreePage(to_free);
    if (logger_ != nullptr) logger_->PageFree(to_free);
  }

  num_entries_.fetch_add(right->num_entries(), std::memory_order_relaxed);
  smo_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BTree::ApproxMedianKey(std::string* out) {
  PageRef cur = FixRoot();
  BTreeNode node(cur->data());
  while (!node.is_leaf()) {
    const int mid = node.count() / 2;
    const PageId child = node.count() == 0
                             ? node.leftmost_child()
                             : node.ChildAt(std::max(0, mid - 1));
    cur = FixPage(Plain(child));
    node = BTreeNode(cur->data());
  }
  if (node.count() == 0) return Status::NotFound("empty tree");
  *out = node.KeyAt(node.count() / 2).ToString();
  return Status::OK();
}

Status BTree::MinKey(std::string* out) {
  PageRef cur = FixPage(LeftmostLeaf());
  for (;;) {
    BTreeNode node(cur->data());
    if (node.count() > 0) {
      *out = node.KeyAt(0).ToString();
      return Status::OK();
    }
    if (node.next() == kInvalidPageId) return Status::NotFound();
    cur = FixPage(node.next());
  }
}

void BTree::ForEachEntry(const std::function<void(plp::Slice, plp::Slice)>& fn) {
  struct Walker {
    BTree* tree;
    const std::function<void(plp::Slice, plp::Slice)>& fn;
    void Walk(PageId pid) {
      PageRef page = tree->FixPage(pid);
      if (!page) return;
      BTreeNode node(page->data());
      if (node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) {
          fn(node.KeyAt(i), node.ValueAt(i));
        }
        return;
      }
      if (node.leftmost_child() != kInvalidPageId) {
        Walk(tree->Plain(node.leftmost_child()));
      }
      for (int i = 0; i < node.count(); ++i) Walk(tree->Plain(node.ChildAt(i)));
    }
  };
  Walker{this, fn}.Walk(root_);
}

Status BTree::CheckIntegrity() {
  struct Checker {
    BTree* tree;
    Status status = Status::OK();

    void Check(PageId pid, const std::string* lo, const std::string* hi,
               int expected_level) {
      if (!status.ok()) return;
      PageRef page = tree->FixPage(pid);
      if (!page) {
        status = Status::Corruption("dangling child pointer");
        return;
      }
      BTreeNode node(page->data());
      // Levels strictly decrease toward the leaves. (Meld can legitimately
      // hang shorter sub-trees below a node, so equality with parent-1 is
      // not required.)
      if (expected_level >= 0 && node.level() >= expected_level) {
        status = Status::Corruption("level not decreasing");
        return;
      }
      for (int i = 0; i < node.count(); ++i) {
        if (i > 0 && !(node.KeyAt(i - 1) < node.KeyAt(i))) {
          status = Status::Corruption("keys out of order");
          return;
        }
        if (lo && node.KeyAt(i) < plp::Slice(*lo)) {
          status = Status::Corruption("key below lower bound");
          return;
        }
        if (hi && !(node.KeyAt(i) < plp::Slice(*hi))) {
          status = Status::Corruption("key above upper bound");
          return;
        }
      }
      if (node.is_leaf()) return;
      if (node.leftmost_child() == kInvalidPageId) {
        status = Status::Corruption("internal node without leftmost child");
        return;
      }
      // leftmost child: keys in [lo, key0)
      {
        std::string first = node.count() > 0 ? node.KeyAt(0).ToString() : "";
        Check(tree->Plain(node.leftmost_child()), lo,
              node.count() > 0 ? &first : hi, node.level());
      }
      for (int i = 0; i < node.count(); ++i) {
        std::string this_key = node.KeyAt(i).ToString();
        std::string next_key =
            i + 1 < node.count() ? node.KeyAt(i + 1).ToString() : "";
        Check(tree->Plain(node.ChildAt(i)), &this_key,
              i + 1 < node.count() ? &next_key : hi, node.level());
      }
    }
  };
  Checker checker{this};
  checker.Check(root_, nullptr, nullptr, -1);
  return checker.status;
}

}  // namespace plp
