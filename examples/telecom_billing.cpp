// Telecom billing scenario: the TATP-style workload the paper's intro
// motivates. Runs the full TATP mix against two designs side by side and
// reports throughput plus the critical-section profile, so you can see
// what physiological partitioning buys an actual OLTP application.
//
//   $ ./example_telecom_billing [subscribers] [seconds]
#include <cstdio>
#include <cstdlib>

#include "src/engine/engine.h"
#include "src/sync/cs_profiler.h"
#include "src/workload/tatp.h"
#include "src/workload/workload_driver.h"

using namespace plp;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::uint32_t subscribers =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10000;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 1;

  std::printf("TATP, %u subscribers, %ds per design, 4 clients\n\n",
              subscribers, seconds);
  std::printf("%-14s %10s %12s %14s %14s\n", "design", "Ktps", "CS/txn",
              "latches/txn", "aborts");

  for (SystemDesign design :
       {SystemDesign::kConventional, SystemDesign::kLogical,
        SystemDesign::kPlpLeaf}) {
    EngineConfig config;
    config.design = design;
    config.num_workers = 4;
    auto created = CreateEngine(config);
    if (!created.ok()) {
      std::fprintf(stderr, "create engine: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    auto engine = std::move(created).value();
    engine->Start();

    TatpConfig tatp_config;
    tatp_config.subscribers = subscribers;
    tatp_config.partitions = 4;
    TatpWorkload tatp(engine.get(), tatp_config);
    if (Status st = tatp.Load(); !st.ok()) {
      std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
      return 1;
    }

    DriverOptions options;
    options.num_threads = 4;
    options.duration = std::chrono::seconds(seconds);
    DriverResult r = RunWorkload(
        engine.get(), [&](Rng& rng) { return tatp.NextTransaction(rng); },
        options);

    std::printf("%-14s %10.1f %12.2f %14.2f %14llu\n",
                SystemDesignName(design), r.ktps(), r.cs_per_txn(),
                r.latches_per_txn(),
                static_cast<unsigned long long>(r.aborted));
    engine->Stop();
  }

  std::printf(
      "\nReading the numbers: the PLP row should show near-zero latches\n"
      "per transaction and the lowest critical-section count — the paper's\n"
      "Figure 1/3 story on your own workload scale.\n");
  return 0;
}
