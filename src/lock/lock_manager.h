// Centralized lock manager (the conventional system's logical concurrency
// control). Every acquisition passes through a lock-table bucket critical
// section — the unscalable communication that SLI and logical partitioning
// attack (Section 2.2).
#ifndef PLP_LOCK_LOCK_MANAGER_H_
#define PLP_LOCK_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lock/lock_mode.h"
#include "src/metrics/registry.h"
#include "src/sync/latch.h"
#include "src/sync/thread_annotations.h"

namespace plp {

class LockManager {
 public:
  /// `metrics` receives the lock.* metrics (acquisitions, waits, timeouts,
  /// wait-time histogram); nullptr records into MetricsRegistry::Scratch().
  explicit LockManager(MetricsRegistry* metrics = nullptr);
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires `name` in `mode` for `txn`, waiting up to `timeout`.
  /// kTimedOut doubles as deadlock resolution (the caller aborts).
  /// Acquiring a mode already covered by a held mode is a no-op.
  Status Acquire(TxnId txn, const std::string& name, LockMode mode,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(100));

  /// Releases one lock.
  void Release(TxnId txn, const std::string& name);

  /// Releases a batch (commit/abort path).
  void ReleaseAll(TxnId txn, const std::vector<std::string>& names);

  /// True if some transaction is currently blocked on `name` (SLI uses
  /// this to decide when an inherited lock must be given back).
  bool HasWaiters(const std::string& name);

  std::uint64_t num_acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kNumBuckets = 256;

  struct LockEntry {
    std::map<TxnId, LockMode> holders;
    int waiters = 0;
  };

  struct Bucket {
    Mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, LockEntry> locks PLP_GUARDED_BY(mu);
  };

  Bucket& BucketFor(const std::string& name);

  /// Grant check under the bucket mutex.
  static bool CanGrant(const LockEntry& entry, TxnId txn, LockMode mode);

  Bucket buckets_[kNumBuckets];
  std::atomic<std::uint64_t> acquisitions_{0};

  // Registry metrics (cached pointers; see the constructor).
  Counter* acquisitions_metric_ = nullptr;
  Counter* waits_metric_ = nullptr;
  Counter* timeouts_metric_ = nullptr;
  Histogram* wait_us_metric_ = nullptr;
};

/// Conventional lock-name helpers: table-level intents plus record locks.
std::string TableLockName(std::uint32_t table_id);
std::string RecordLockName(std::uint32_t table_id, const std::string& key);

}  // namespace plp

#endif  // PLP_LOCK_LOCK_MANAGER_H_
