#include "src/common/rng.h"

#include <cmath>

namespace plp {

namespace {
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

namespace {
double Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

std::uint64_t NuRand(Rng& rng, std::uint64_t a, std::uint64_t x,
                     std::uint64_t y, std::uint64_t c) {
  return (((rng.Range(0, a) | rng.Range(x, y)) + c) % (y - x + 1)) + x;
}

}  // namespace plp
