#include "src/metrics/time_breakdown.h"

#include <cstdio>

#include "src/common/clock.h"
#include "src/sync/latch.h"

namespace plp {

double CalibratedLatchCostNs() {
  static const double cost = [] {
    const bool was_enabled = CsProfiler::enabled();
    CsProfiler::SetEnabled(false);
    Latch latch(PageClass::kIndex);
    constexpr int kIters = 200000;
    const std::uint64_t t0 = NowNanos();
    for (int i = 0; i < kIters; ++i) {
      latch.AcquireShared();
      latch.ReleaseShared();
    }
    const std::uint64_t t1 = NowNanos();
    CsProfiler::SetEnabled(was_enabled);
    return static_cast<double>(t1 - t0) / kIters;
  }();
  return cost;
}

TimeBreakdown MakeTimeBreakdown(const CsCounts& delta, std::uint64_t num_xcts,
                                std::uint64_t wall_ns) {
  TimeBreakdown b;
  if (num_xcts == 0) return b;
  const double per_xct = 1.0 / static_cast<double>(num_xcts) / 1000.0;

  b.total_us = static_cast<double>(wall_ns) * per_xct;
  b.idx_latch_wait_us =
      static_cast<double>(
          delta.latch_wait_ns[static_cast<int>(PageClass::kIndex)]) *
      per_xct;
  b.heap_latch_wait_us =
      static_cast<double>(
          delta.latch_wait_ns[static_cast<int>(PageClass::kHeap)]) *
      per_xct;
  b.lock_wait_us =
      static_cast<double>(
          delta.wait_ns[static_cast<int>(CsCategory::kLockMgr)]) *
      per_xct;
  // SMO serialization is tracked through the page-latch category's
  // TrackedMutex (smo_mu_), whose waits also land in kPageLatch wait_ns;
  // separate them out as the portion not attributed to a page class.
  const double total_latch_wait =
      static_cast<double>(
          delta.wait_ns[static_cast<int>(CsCategory::kPageLatch)]) *
      per_xct;
  const double classed = b.idx_latch_wait_us + b.heap_latch_wait_us +
                         static_cast<double>(delta.latch_wait_ns[static_cast<int>(
                             PageClass::kCatalog)]) *
                             per_xct;
  b.smo_wait_us = total_latch_wait > classed ? total_latch_wait - classed : 0;

  b.latching_us = static_cast<double>(delta.TotalLatches()) *
                  CalibratedLatchCostNs() * per_xct;

  const double accounted = b.idx_latch_wait_us + b.heap_latch_wait_us +
                           b.latching_us + b.lock_wait_us + b.smo_wait_us;
  b.other_us = b.total_us > accounted ? b.total_us - accounted : 0;
  return b;
}

std::string FormatBreakdownRow(const std::string& label,
                               const TimeBreakdown& b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-18s | total %9.2fus | idx-wait %8.2f | heap-wait %8.2f | "
                "latching %7.2f | lock-wait %8.2f | smo-wait %7.2f | "
                "other %9.2f",
                label.c_str(), b.total_us, b.idx_latch_wait_us,
                b.heap_latch_wait_us, b.latching_us, b.lock_wait_us,
                b.smo_wait_us, b.other_us);
  return buf;
}

void PublishBreakdown(MetricsRegistry* registry, const std::string& prefix,
                      const TimeBreakdown& b) {
  auto set = [&](const char* field, double us) {
    registry->gauge(prefix + field)->Set(static_cast<std::int64_t>(us));
  };
  set(".total_us", b.total_us);
  set(".idx_latch_wait_us", b.idx_latch_wait_us);
  set(".heap_latch_wait_us", b.heap_latch_wait_us);
  set(".latching_us", b.latching_us);
  set(".lock_wait_us", b.lock_wait_us);
  set(".smo_wait_us", b.smo_wait_us);
  set(".other_us", b.other_us);
}

}  // namespace plp
