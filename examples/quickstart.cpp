// Quickstart: create a PLP engine, make a partitioned table, pipeline
// asynchronous transactions through it, and inspect what the design
// eliminated.
//
//   $ ./example_quickstart
//   $ PLP_STATS_INTERVAL_MS=100 ./example_quickstart   # periodic [stats] JSON
//   $ PLP_TRACE_PATH=trace.json ./example_quickstart   # Perfetto timeline
//     (open at https://ui.perfetto.dev or chrome://tracing)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/key_encoding.h"
#include "src/engine/engine.h"
#include "src/sync/cs_profiler.h"

using namespace plp;  // NOLINT — example brevity

int main() {
  // 1. Pick a system design. kPlpLeaf is the paper's favorite: latch-free
  //    index AND heap accesses.
  EngineConfig config;
  config.design = SystemDesign::kPlpLeaf;
  config.num_workers = 4;
  // Optional background stats reporter: with PLP_STATS_INTERVAL_MS set,
  // the engine prints a `[stats] {...}` JSON snapshot of every metric at
  // that cadence (plus a final one at shutdown).
  if (const char* ms = std::getenv("PLP_STATS_INTERVAL_MS")) {
    config.stats_interval = std::chrono::milliseconds(std::atoi(ms));
  }
  auto created = CreateEngine(config);
  if (!created.ok()) {
    std::fprintf(stderr, "create engine: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(created).value();
  engine->Start();

  // 2. Create a table partitioned into four key ranges. Each range is one
  //    MRBTree sub-tree owned by one partition worker.
  auto table = engine->CreateTable(
      "accounts", {"", KeyU32(2500), KeyU32(5000), KeyU32(7500)});
  if (!table.ok()) {
    std::fprintf(stderr, "create table: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  // 3. Transactions are flow graphs of actions; the partition manager
  //    routes each action to the worker owning its key range. Submit()
  //    returns a TxnHandle immediately, so this single client thread keeps
  //    thousands of inserts in flight across the four workers; once
  //    max_inflight transactions are pending, Submit blocks until a slot
  //    frees (backpressure).
  CsProfiler::Global().Reset();
  std::atomic<std::uint64_t> callback_commits{0};
  std::vector<TxnHandle> handles;
  handles.reserve(10000);
  for (std::uint32_t id = 1; id <= 10000; ++id) {
    TxnRequest txn;
    const std::string key = KeyU32(id);
    txn.Add(0, "accounts", key, [key](ExecContext& ctx) {
      return ctx.Insert(key, "balance=100");
    });
    TxnOptions options;
    // With PLP_TRACE_PATH set, sample some submissions for stage tracing
    // so the exported timeline has txn_stage spans to show.
    options.trace = std::getenv("PLP_TRACE_PATH") != nullptr && id % 16 == 0;
    options.on_complete = [&callback_commits](const Status& st) {
      if (st.ok()) callback_commits.fetch_add(1, std::memory_order_relaxed);
    };
    handles.push_back(engine->Submit(std::move(txn), std::move(options)));
  }
  const std::size_t peak = engine->peak_inflight();
  for (std::uint32_t id = 1; id <= 10000; ++id) {
    if (Status st = handles[id - 1].Wait(); !st.ok()) {
      std::fprintf(stderr, "insert %u: %s\n", id, st.ToString().c_str());
      return 1;
    }
  }

  // A multi-step transaction: read one account, then write another —
  // possibly on a different partition worker, with a rendezvous between
  // the two phases. Execute() is the blocking wrapper over
  // Submit(...).Wait() for when a caller wants the classic API.
  auto balance = std::make_shared<std::string>();
  TxnRequest transfer;
  const std::string from = KeyU32(42), to = KeyU32(9001);
  transfer.Add(0, "accounts", from, [from, balance](ExecContext& ctx) {
    return ctx.Read(from, balance.get());
  });
  transfer.Add(1, "accounts", to, [to, balance](ExecContext& ctx) {
    return ctx.Update(to, *balance + "+transfer");
  });
  if (Status st = engine->Execute(transfer); !st.ok()) {
    std::fprintf(stderr, "transfer: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. The point of PLP: zero page latches on index and heap pages — and
  //    with the async front door, deep pipelining from one client thread.
  CsCounts counts = CsProfiler::Global().Collect();
  std::printf("transactions committed : 10001 (%llu via callbacks)\n",
              static_cast<unsigned long long>(callback_commits.load()));
  std::printf("peak in-flight         : %llu (1 client thread)\n",
              static_cast<unsigned long long>(peak));
  std::printf("index page latches     : %llu\n",
              static_cast<unsigned long long>(
                  counts.latches[static_cast<int>(PageClass::kIndex)]));
  std::printf("heap page latches      : %llu\n",
              static_cast<unsigned long long>(
                  counts.latches[static_cast<int>(PageClass::kHeap)]));
  std::printf("lock-manager entries   : %llu\n",
              static_cast<unsigned long long>(
                  counts.entries[static_cast<int>(CsCategory::kLockMgr)]));
  std::printf("message-passing entries: %llu  (the fixed-contention kind)\n",
              static_cast<unsigned long long>(counts.entries[static_cast<int>(
                  CsCategory::kMessagePassing)]));
  std::printf("index integrity        : %s\n",
              table.value()->primary()->CheckIntegrity().ToString().c_str());

  // 5. Engine-wide observability: GetStats() snapshots every registered
  //    counter/gauge/histogram (see docs/observability.md for the catalog).
  const StatsSnapshot stats = engine->GetStats();
  std::printf("txn.commits            : %llu\n",
              static_cast<unsigned long long>(stats.counter("txn.commits")));
  std::printf("partition.cross_site   : %llu of %llu routed txns\n",
              static_cast<unsigned long long>(
                  stats.counter("partition.cross_site_txns")),
              static_cast<unsigned long long>(stats.counter("partition.txns")));

  // 6. Flight recorder: with PLP_TRACE_PATH set, export the per-thread
  //    event rings (txn stage spans, partition phases, any latch/lock
  //    waits) as Chrome-trace JSON, loadable in Perfetto.
  if (const char* trace_path = std::getenv("PLP_TRACE_PATH")) {
    if (Status st = engine->DumpTrace(trace_path); st.ok()) {
      std::printf("flight recorder trace  : %s\n", trace_path);
    } else {
      std::fprintf(stderr, "trace export: %s\n", st.ToString().c_str());
    }
  }

  engine->Stop();
  return 0;
}
