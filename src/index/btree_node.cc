#include "src/index/btree_node.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/buffer/page.h"

namespace plp {

namespace {
std::atomic_ref<std::uint16_t> LevelRef(const char* data) {
  return std::atomic_ref<std::uint16_t>(
      *reinterpret_cast<std::uint16_t*>(const_cast<char*>(data) + 4));
}

std::atomic_ref<PageId> RefAt(const char* data, std::size_t off) {
  assert(reinterpret_cast<std::uintptr_t>(data + off) % alignof(PageId) ==
         0);
  return std::atomic_ref<PageId>(
      *reinterpret_cast<PageId*>(const_cast<char*>(data) + off));
}
}  // namespace

void BTreeNode::Init(char* data, std::uint16_t level) {
  // The level field (bytes 4-5) is peeked without a latch by descending
  // readers (is_leaf_relaxed), so every write to it must be atomic —
  // including the zeroing a plain memset over the header would do.
  std::memset(data, 0, 4);
  LevelRef(data).store(level, std::memory_order_relaxed);
  std::memset(data + 6, 0, kHeaderSize - 6);
  BTreeNode node(data);
  node.set_cell_start(static_cast<std::uint16_t>(kPageSize));
  node.set_next(kInvalidPageId);
  node.set_leftmost_child(kInvalidPageId);
}

bool BTreeNode::is_leaf_relaxed() const {
  return LevelRef(data_).load(std::memory_order_relaxed) == 0;
}

std::uint16_t BTreeNode::GetU16(std::size_t off) const {
  std::uint16_t v;
  std::memcpy(&v, data_ + off, 2);
  return v;
}
void BTreeNode::PutU16(std::size_t off, std::uint16_t v) {
  std::memcpy(data_ + off, &v, 2);
}
std::uint32_t BTreeNode::GetU32(std::size_t off) const {
  std::uint32_t v;
  std::memcpy(&v, data_ + off, 4);
  return v;
}
void BTreeNode::PutU32(std::size_t off, std::uint32_t v) {
  std::memcpy(data_ + off, &v, 4);
}

Slice BTreeNode::KeyAt(int i) const {
  const std::uint16_t off = SlotAt(i);
  const std::uint16_t klen = GetU16(off);
  return Slice(data_ + off + 4, klen);
}

Slice BTreeNode::ValueAt(int i) const {
  const std::uint16_t off = SlotAt(i);
  const std::uint16_t klen = GetU16(off);
  const std::uint16_t vlen = GetU16(off + 2);
  return Slice(data_ + off + 4 + klen, vlen);
}

PageId BTreeNode::ChildAt(int i) const {
  Slice v = ValueAt(i);
  assert(v.size() == sizeof(PageId));
  PageId id;
  std::memcpy(&id, v.data(), sizeof(PageId));
  return id;
}

int BTreeNode::LowerBound(Slice key) const {
  int lo = 0, hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (KeyAt(mid).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTreeNode::UpperBound(Slice key) const {
  int lo = 0, hi = count();
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (KeyAt(mid).compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTreeNode::Find(Slice key) const {
  const int pos = LowerBound(key);
  if (pos < count() && KeyAt(pos) == key) return pos;
  return -1;
}

PageId BTreeNode::ChildFor(Slice key) const {
  // Last separator <= key; below the first separator go leftmost.
  const int pos = UpperBound(key);
  if (pos == 0) return leftmost_child();
  return ChildAt(pos - 1);
}

std::size_t BTreeNode::ValueOffset(int slot) const {
  if (slot < 0) return 12;  // leftmost pointer
  const std::uint16_t off = SlotAt(slot);
  const std::uint16_t klen = GetU16(off);
  assert(GetU16(off + 2) == sizeof(PageId));
  return off + 4u + klen;
}

PageId BTreeNode::ChildRefAt(int slot) const {
  return RefAt(data_, ValueOffset(slot)).load(std::memory_order_acquire);
}

PageId BTreeNode::ChildRefFor(Slice key, int* slot) const {
  const int pos = UpperBound(key);
  *slot = pos - 1;  // -1 selects the leftmost pointer
  return ChildRefAt(*slot);
}

bool BTreeNode::CasChildRef(int slot, PageId expected, PageId desired) {
  return RefAt(data_, ValueOffset(slot))
      .compare_exchange_strong(expected, desired,
                               std::memory_order_acq_rel);
}

void BTreeNode::StoreChildRef(int slot, PageId v) {
  RefAt(data_, ValueOffset(slot)).store(v, std::memory_order_release);
}

std::size_t BTreeNode::ContiguousFreeSpace() const {
  const std::size_t dir_end = kHeaderSize + count() * kSlotSize;
  const std::size_t start = cell_start();
  return start > dir_end ? start - dir_end : 0;
}

std::size_t BTreeNode::TotalFreeSpace() const {
  // Internal nodes budget up to 3 alignment-pad bytes per cell (value
  // 4-alignment for atomic child refs) so every capacity check stays a
  // lower bound on what Compact can actually achieve.
  const std::size_t pad = level() != 0 ? 3u : 0u;
  std::size_t live = 0;
  for (int i = 0; i < count(); ++i) {
    const std::uint16_t off = SlotAt(i);
    live += 4u + GetU16(off) + GetU16(off + 2) + pad;
  }
  const std::size_t used = kHeaderSize + count() * kSlotSize + live;
  return used >= kPageSize ? 0 : kPageSize - used;
}

bool BTreeNode::HasRoomFor(Slice key, Slice value) const {
  const std::size_t pad = level() != 0 ? 3u : 0u;
  const std::size_t need = 4 + key.size() + value.size() + pad + kSlotSize;
  return TotalFreeSpace() >= need;
}

std::uint16_t BTreeNode::WriteCell(Slice key, Slice value) {
  const bool internal = level() != 0;
  const std::size_t cell = 4 + key.size() + value.size();
  const std::size_t reserve = cell + (internal ? 3 : 0);
  if (ContiguousFreeSpace() < reserve + kSlotSize) {
    if (TotalFreeSpace() < reserve + kSlotSize) return 0;
    Compact();
    if (ContiguousFreeSpace() < reserve + kSlotSize) return 0;
  }
  // Pad internal cells (pad bytes sit after the value) so the 4-byte
  // child reference lands 4-aligned for the atomic accessors.
  const std::size_t pad =
      internal ? ((cell_start() - value.size()) & 3) : 0;
  const std::uint16_t off =
      static_cast<std::uint16_t>(cell_start() - cell - pad);
  PutU16(off, static_cast<std::uint16_t>(key.size()));
  PutU16(off + 2, static_cast<std::uint16_t>(value.size()));
  std::memcpy(data_ + off + 4, key.data(), key.size());
  std::memcpy(data_ + off + 4 + key.size(), value.data(), value.size());
  set_cell_start(off);
  return off;
}

Status BTreeNode::InsertAt(int pos, Slice key, Slice value) {
  assert(pos >= 0 && pos <= count());
  const std::uint16_t off = WriteCell(key, value);
  if (off == 0) return Status::NoSpace();
  // Shift the slot directory to open position `pos`.
  const int n = count();
  char* dir = data_ + kHeaderSize;
  std::memmove(dir + (pos + 1) * kSlotSize, dir + pos * kSlotSize,
               static_cast<std::size_t>(n - pos) * kSlotSize);
  SetSlot(pos, off);
  set_count(static_cast<std::uint16_t>(n + 1));
  return Status::OK();
}

void BTreeNode::RemoveAt(int pos) {
  assert(pos >= 0 && pos < count());
  const int n = count();
  char* dir = data_ + kHeaderSize;
  std::memmove(dir + pos * kSlotSize, dir + (pos + 1) * kSlotSize,
               static_cast<std::size_t>(n - pos - 1) * kSlotSize);
  set_count(static_cast<std::uint16_t>(n - 1));
}

Status BTreeNode::SetValueAt(int i, Slice value) {
  const std::uint16_t off = SlotAt(i);
  const std::uint16_t klen = GetU16(off);
  const std::uint16_t vlen = GetU16(off + 2);
  if (value.size() == vlen) {
    std::memcpy(data_ + off + 4 + klen, value.data(), value.size());
    return Status::OK();
  }
  // Size change: rewrite the cell.
  const std::string key = KeyAt(i).ToString();
  RemoveAt(i);
  return InsertAt(i, key, value);
}

void BTreeNode::MoveTail(int from, BTreeNode* dst) {
  const int n = count();
  assert(from >= 0 && from <= n);
  for (int i = from; i < n; ++i) {
    Status st = dst->InsertAt(dst->count(), KeyAt(i), ValueAt(i));
    assert(st.ok());
    (void)st;
  }
  set_count(static_cast<std::uint16_t>(from));
  Compact();
}

Status BTreeNode::AppendAll(const BTreeNode& src) {
  // Verify capacity first so a failed append leaves us unchanged.
  std::size_t need = 0;
  for (int i = 0; i < src.count(); ++i) {
    need += 4 + src.KeyAt(i).size() + src.ValueAt(i).size() + kSlotSize;
  }
  if (TotalFreeSpace() < need) return Status::NoSpace();
  for (int i = 0; i < src.count(); ++i) {
    Status st = InsertAt(count(), src.KeyAt(i), src.ValueAt(i));
    assert(st.ok());
    (void)st;
  }
  return Status::OK();
}

void BTreeNode::Compact() {
  struct Entry {
    std::string key, value;
  };
  const bool internal = level() != 0;
  const int n = count();
  std::vector<Entry> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) {
    entries.push_back({KeyAt(i).ToString(), ValueAt(i).ToString()});
  }
  set_cell_start(static_cast<std::uint16_t>(kPageSize));
  for (int i = 0; i < n; ++i) {
    const Entry& e = entries[i];
    const std::size_t cell = 4 + e.key.size() + e.value.size();
    // Same value-alignment padding as WriteCell.
    const std::size_t pad =
        internal ? ((cell_start() - e.value.size()) & 3) : 0;
    const std::uint16_t off =
        static_cast<std::uint16_t>(cell_start() - cell - pad);
    PutU16(off, static_cast<std::uint16_t>(e.key.size()));
    PutU16(off + 2, static_cast<std::uint16_t>(e.value.size()));
    std::memcpy(data_ + off + 4, e.key.data(), e.key.size());
    std::memcpy(data_ + off + 4 + e.key.size(), e.value.data(),
                e.value.size());
    set_cell_start(off);
    SetSlot(i, off);
  }
}

void BTreeNode::UnswizzleAll(Page* page, BufferPool* pool) {
  BTreeNode node(page->data());
  if (node.level() == 0) return;  // leaves hold no child refs
  for (int slot = -1; slot < node.count(); ++slot) {
    const PageId ref = node.ChildRefAt(slot);
    if (!IsSwizzledRef(ref)) continue;
    Page* child = pool->SwizzledFrame(ref);
    node.StoreChildRef(slot, child->id());
    child->ClearSwizzleParentIf(page->id());
    pool->NoteUnswizzled();
  }
}

bool BTreeNode::UnswizzleChildRef(Page* parent, std::uint32_t frame_index,
                                  PageId plain) {
  BTreeNode node(parent->data());
  if (node.level() == 0) return true;  // stale marker: nothing to rewrite
  const PageId tagged = SwizzleRef(frame_index);
  for (int slot = -1; slot < node.count(); ++slot) {
    if (node.ChildRefAt(slot) == tagged) {
      node.StoreChildRef(slot, plain);
      return true;
    }
  }
  // Not found: the entry moved or was already rewritten — the marker is
  // stale, which is fine; the caller just clears it.
  return true;
}

}  // namespace plp
