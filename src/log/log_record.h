// Write-ahead log record format.
#ifndef PLP_LOG_LOG_RECORD_H_
#define PLP_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace plp {

enum class LogType : std::uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kHeapInsert = 4,
  kHeapUpdate = 5,
  kHeapDelete = 6,
  kIndexInsert = 7,
  kIndexDelete = 8,
  kCheckpoint = 9,
  // Physiological persistent-index records (src/index/persistent). Leaf
  // records are physical-to-page (rid.page_id), logical-within-page (key):
  // redo re-applies the op on that page; undo compensates through the
  // tree. SMO records carry trimmed after-images of every page one
  // structure modification touched — a single record, so a torn tail can
  // never leave half a split durable.
  kIndexLeafInsert = 10,
  kIndexLeafDelete = 11,
  kIndexLeafUpdate = 12,
  kIndexSmo = 13,
  kIndexPageFree = 14,
  // Logical snapshot of one MRBTree's partition table (boundary -> root
  // page id); appended on create so restart rebuilds the multi-rooted
  // metadata without an index snapshot.
  kPartitionTable = 15,
  // One atomic record for a slice/meld: the SMO page images AND the
  // post-repartition partition table together. A crash can never make
  // the page moves durable without the routing change (or vice versa).
  kIndexRepartition = 16,
};

const char* LogTypeName(LogType t);

/// One physiological log record: the affected page/RID plus redo and undo
/// images. Begin/commit/abort records carry no images. `table` names the
/// table a heap/index op belongs to so restart recovery can route the
/// replay to the right heap file and primary index (UINT32_MAX when the
/// record is not table-scoped). Checkpoint records carry the serialized
/// CheckpointImage in `redo`.
struct LogRecord {
  LogType type = LogType::kBegin;
  TxnId txn = kInvalidTxnId;
  Rid rid;                // affected record (heap ops); invalid otherwise
  std::uint32_t table = UINT32_MAX;  // owning table id (heap/index ops)
  std::string redo;       // after-image / inserted key or payload
  std::string undo;       // before-image / deleted key or payload

  /// Wire format: [u32 total][u8 type][u64 txn][u32 page][u16 slot]
  ///              [u32 table][u32 redo_len][u32 undo_len][redo][undo]
  std::string Serialize() const;

  /// Parses one record from `data` (at least `size` bytes available).
  /// On success stores the record and its encoded length. Returns false if
  /// the buffer does not contain a complete, well-formed record.
  static bool Deserialize(const char* data, std::size_t size, LogRecord* out,
                          std::size_t* consumed);

  std::size_t SerializedSize() const { return kHeaderSize + redo.size() + undo.size(); }

  static constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4 + 2 + 4 + 4 + 4;
};

}  // namespace plp

#endif  // PLP_LOG_LOG_RECORD_H_
