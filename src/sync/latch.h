// Instrumented page latches and categorized mutexes.
#ifndef PLP_SYNC_LATCH_H_
#define PLP_SYNC_LATCH_H_

#include <atomic>
#include <cassert>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/sync/cs_profiler.h"

namespace plp {

/// Latch acquisition mode.
enum class LatchMode { kShared, kExclusive };

/// Whether an access method acquires page latches. Partition-owned
/// structures in PLP run with kNone: exactly one thread touches the pages,
/// so no physical synchronization is required (Section 3.2.2).
enum class LatchPolicy { kLatched, kNone };

/// Reader-writer page latch with contention instrumentation. Every
/// acquisition is recorded against the page class it protects.
class Latch {
 public:
  explicit Latch(PageClass page_class = PageClass::kCatalog)
      : page_class_(page_class) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void set_page_class(PageClass c) { page_class_ = c; }
  PageClass page_class() const { return page_class_; }

  void AcquireShared() {
    if (mu_.try_lock_shared()) {
      CsProfiler::RecordLatch(page_class_, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = NowNanos();
    mu_.lock_shared();
    CsProfiler::RecordLatch(page_class_, /*contended=*/true, NowNanos() - t0);
  }
  void ReleaseShared() { mu_.unlock_shared(); }

  void AcquireExclusive() {
    if (mu_.try_lock()) {
      CsProfiler::RecordLatch(page_class_, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = NowNanos();
    mu_.lock();
    CsProfiler::RecordLatch(page_class_, /*contended=*/true, NowNanos() - t0);
  }
  void ReleaseExclusive() { mu_.unlock(); }

  /// Non-blocking exclusive acquisition, for paths that must never wait on
  /// a latch while holding pool-internal locks (eviction-time unswizzle).
  bool TryAcquireExclusive() {
    if (!mu_.try_lock()) return false;
    CsProfiler::RecordLatch(page_class_, /*contended=*/false);
    return true;
  }

  void Acquire(LatchMode mode) {
    if (mode == LatchMode::kShared) {
      AcquireShared();
    } else {
      AcquireExclusive();
    }
  }
  void Release(LatchMode mode) {
    if (mode == LatchMode::kShared) {
      ReleaseShared();
    } else {
      ReleaseExclusive();
    }
  }

 private:
  std::shared_mutex mu_;
  PageClass page_class_;
};

/// RAII guard honoring a LatchPolicy: under kNone the acquisition is skipped
/// entirely — the code path the paper makes possible.
class LatchGuard {
 public:
  LatchGuard(Latch* latch, LatchMode mode, LatchPolicy policy)
      : latch_(policy == LatchPolicy::kLatched ? latch : nullptr),
        mode_(mode) {
    if (latch_ != nullptr) latch_->Acquire(mode_);
  }
  ~LatchGuard() { Release(); }

  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

  /// Early release (used by latch crabbing).
  void Release() {
    if (latch_ != nullptr) {
      latch_->Release(mode_);
      latch_ = nullptr;
    }
  }

 private:
  Latch* latch_;
  LatchMode mode_;
};

/// Mutex whose acquisitions are tallied under a CsCategory; protects
/// internal storage-manager state (lock-table buckets, buffer-pool shards,
/// the transaction table, catalog structures, ...).
class TrackedMutex {
 public:
  explicit TrackedMutex(CsCategory category) : category_(category) {}

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock() {
    if (mu_.try_lock()) {
      CsProfiler::Record(category_, /*contended=*/false);
      return;
    }
    const std::uint64_t t0 = NowNanos();
    mu_.lock();
    CsProfiler::Record(category_, /*contended=*/true, NowNanos() - t0);
  }
  void unlock() { mu_.unlock(); }
  bool try_lock() {
    bool ok = mu_.try_lock();
    if (ok) CsProfiler::Record(category_, false);
    return ok;
  }

  /// Access to the raw mutex for condition-variable waits; the caller is
  /// responsible for recording the entry.
  std::mutex& raw() { return mu_; }
  CsCategory category() const { return category_; }

 private:
  std::mutex mu_;
  CsCategory category_;
};

}  // namespace plp

#endif  // PLP_SYNC_LATCH_H_
