#include "src/io/codec.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace plp::io {

Status AtomicWriteFile(const std::string& path, const std::string& blob) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("open " + tmp + ": " + std::strerror(errno));
  }
  bool ok = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  std::fclose(f);
  if (!ok) return Status::Internal("write " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace plp::io
