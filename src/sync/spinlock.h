// Test-and-test-and-set spinlock for very short critical sections.
#ifndef PLP_SYNC_SPINLOCK_H_
#define PLP_SYNC_SPINLOCK_H_

#include <atomic>

#include "src/sync/thread_annotations.h"

namespace plp {

/// TTAS spinlock. Satisfies Lockable; engine code locks it through
/// SpinlockGuard so the capability stays visible to the analysis.
class PLP_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() PLP_ACQUIRE() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  bool try_lock() PLP_TRY_ACQUIRE(true) {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() PLP_RELEASE() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Scoped lock over Spinlock (std::lock_guard is invisible to the
/// analysis).
class PLP_SCOPED_CAPABILITY SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& lock) PLP_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinlockGuard() PLP_RELEASE() { lock_.unlock(); }

  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace plp

#endif  // PLP_SYNC_SPINLOCK_H_
