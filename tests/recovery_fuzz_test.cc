// Recovery fuzz: run a randomized workload where transactions commit or
// abort at random, "crash" at an arbitrary point, recover into a fresh
// buffer pool, and compare the recovered index against a reference model
// that applies committed transactions only.
//
// Two flavors:
//  * RecoveryFuzzTest        — the seed's memory-resident form (retained
//    log, fresh pool, single whole-log replay).
//  * DurableRecoveryFuzzTest — a simulated-crash loop over the on-disk
//    WAL + checkpoints: several generations of random transactions, each
//    ended by a crash (or occasionally a clean close) at a random kill
//    point, with fuzzy checkpoints sprinkled at random; every reopen
//    recovers from data file + WAL + checkpoint and is verified against
//    the committed-only model over the whole key space.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>

#include "src/common/key_encoding.h"
#include "src/common/rng.h"
#include "src/engine/engine.h"
#include "src/txn/recovery.h"

namespace plp {
namespace {

class RecoveryFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzzTest,
                         ::testing::Values(1, 7, 42, 1234, 99999),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST_P(RecoveryFuzzTest, RecoveredStateMatchesCommittedModel) {
  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.log.retain_for_recovery = true;
  auto created = CreateEngine(config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto engine = std::move(created).value();
  engine->Start();
  ASSERT_TRUE(engine->CreateTable("t", {""}).ok());

  Rng rng(GetParam());
  std::map<std::uint32_t, std::string> model;  // committed state only

  for (int txn_no = 0; txn_no < 400; ++txn_no) {
    const bool doomed = rng.Percent(25);  // 25% of txns abort themselves
    const int ops = static_cast<int>(rng.Range(1, 4));
    std::map<std::uint32_t, std::string> staged = model;
    TxnRequest req;
    bool expect_ok = true;
    for (int op = 0; op < ops; ++op) {
      const auto k = static_cast<std::uint32_t>(rng.Uniform(200));
      const std::string key = KeyU32(k);
      const std::uint64_t kind = rng.Uniform(3);
      if (kind == 0) {
        const std::string value =
            "v" + std::to_string(txn_no) + "-" + std::to_string(op);
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key, value](ExecContext& ctx) {
          return ctx.Insert(key, value);
        });
        if (exists) {
          expect_ok = false;  // duplicate insert aborts the transaction
        } else {
          staged[k] = value;
        }
      } else if (kind == 1) {
        const std::string value = "u" + std::to_string(txn_no);
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key, value](ExecContext& ctx) {
          Status st = ctx.Update(key, value);
          return st.IsNotFound() ? Status::OK() : st;  // tolerated miss
        });
        if (exists) staged[k] = value;
      } else {
        const bool exists = staged.count(k) > 0;
        req.Add(0, "t", key, [key](ExecContext& ctx) {
          Status st = ctx.Delete(key);
          return st.IsNotFound() ? Status::OK() : st;
        });
        if (exists) staged.erase(k);
      }
    }
    if (doomed) {
      req.Add(1, "t", KeyU32(0), [](ExecContext&) {
        return Status::Aborted("fuzz-induced abort");
      });
    }
    Status st = engine->Execute(req);
    if (doomed || !expect_ok) {
      EXPECT_FALSE(st.ok());
    } else if (st.ok()) {
      model = std::move(staged);
    }
  }
  engine->Stop();  // crash point: nothing flushed beyond the log

  BufferPool fresh;
  BTree index(&fresh, LatchPolicy::kNone);
  RecoveryManager rm(engine->db().log(), &fresh);
  RecoveryManager::Stats stats;
  ASSERT_TRUE(rm.Recover(&index, &stats).ok());

  // The recovered index holds exactly the committed keys; every key's
  // recovered RID points at the record whose heap redo also survived.
  EXPECT_EQ(index.num_entries(), model.size());
  for (const auto& [k, expected] : model) {
    std::string rid_bytes;
    ASSERT_TRUE(index.Probe(KeyU32(k), &rid_bytes).ok()) << k;
    Rid rid;
    std::memcpy(&rid.page_id, rid_bytes.data(), 4);
    std::memcpy(&rid.slot, rid_bytes.data() + 4, 2);
    Page* page = fresh.FixUnlocked(rid.page_id);
    ASSERT_NE(page, nullptr) << k;
  }
  // And no uncommitted key leaked in.
  index.ForEachEntry([&](Slice key, Slice) {
    EXPECT_EQ(model.count(DecodeU32(key)), 1u);
  });
}

class DurableRecoveryFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DurableRecoveryFuzzTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_durable_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::remove_all(dir_);
  }
  ~DurableRecoveryFuzzTest() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, DurableRecoveryFuzzTest,
                         ::testing::Values(1, 7, 42, 1234, 99999),
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST_P(DurableRecoveryFuzzTest, CommittedStateSurvivesCrashLoop) {
  constexpr std::uint32_t kKeySpace = 150;
  Rng rng(GetParam());
  std::map<std::uint32_t, std::string> model;  // committed state only

  EngineConfig config;
  config.design = SystemDesign::kConventional;
  config.db.data_dir = dir_.string();
  config.db.frame_budget = 8;  // force eviction churn during the workload
  config.db.txn.durable_commits = true;

  constexpr int kGenerations = 5;
  for (int gen = 0; gen < kGenerations; ++gen) {
    auto created = CreateEngine(config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();
    engine->Start();
    ASSERT_TRUE(engine->db().open_status().ok())
        << "gen " << gen << ": " << engine->db().open_status().ToString();
    if (gen == 0) {
      ASSERT_TRUE(engine->CreateTable("t", {""}).ok());
    }

    // Full-key-space verification against the committed-only model:
    // winners must be readable with their exact payloads, and everything
    // else (losers from the previous crash included) must be absent.
    for (std::uint32_t k = 0; k < kKeySpace; ++k) {
      TxnRequest req;
      const std::string key = KeyU32(k);
      auto payload = std::make_shared<std::string>();
      req.Add(0, "t", key, [key, payload](ExecContext& ctx) {
        return ctx.Read(key, payload.get());
      });
      const bool found = engine->Execute(req).ok();
      auto it = model.find(k);
      if (it != model.end()) {
        ASSERT_TRUE(found) << "gen " << gen << ": committed key " << k
                           << " lost in the crash";
        EXPECT_EQ(*payload, it->second) << "gen " << gen << " key " << k;
      } else {
        EXPECT_FALSE(found) << "gen " << gen << ": uncommitted key " << k
                            << " leaked through recovery";
      }
    }

    // A random number of transactions: the kill point of this generation.
    const int txns = static_cast<int>(rng.Range(40, 150));
    for (int txn_no = 0; txn_no < txns; ++txn_no) {
      const bool doomed = rng.Percent(25);
      const int ops = static_cast<int>(rng.Range(1, 4));
      std::map<std::uint32_t, std::string> staged = model;
      TxnRequest req;
      bool expect_ok = true;
      for (int op = 0; op < ops; ++op) {
        const auto k = static_cast<std::uint32_t>(rng.Uniform(kKeySpace));
        const std::string key = KeyU32(k);
        const std::uint64_t kind = rng.Uniform(3);
        if (kind == 0) {
          const std::string value = "v" + std::to_string(gen) + "-" +
                                    std::to_string(txn_no) + "-" +
                                    std::to_string(op);
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key, value](ExecContext& ctx) {
            return ctx.Insert(key, value);
          });
          if (exists) {
            expect_ok = false;  // duplicate insert aborts the transaction
          } else {
            staged[k] = value;
          }
        } else if (kind == 1) {
          const std::string value =
              "u" + std::to_string(gen) + "-" + std::to_string(txn_no);
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key, value](ExecContext& ctx) {
            Status st = ctx.Update(key, value);
            return st.IsNotFound() ? Status::OK() : st;  // tolerated miss
          });
          if (exists) staged[k] = value;
        } else {
          const bool exists = staged.count(k) > 0;
          req.Add(0, "t", key, [key](ExecContext& ctx) {
            Status st = ctx.Delete(key);
            return st.IsNotFound() ? Status::OK() : st;
          });
          if (exists) staged.erase(k);
        }
      }
      if (doomed) {
        req.Add(1, "t", KeyU32(0), [](ExecContext&) {
          return Status::Aborted("fuzz-induced abort");
        });
      }
      Status st = engine->Execute(req);
      if (doomed || !expect_ok) {
        EXPECT_FALSE(st.ok());
      } else if (st.ok()) {
        model = std::move(staged);
      }
      // Fuzzy checkpoints at random points mid-workload.
      if (rng.Percent(3)) {
        ASSERT_TRUE(engine->db().Checkpoint().ok());
      }
    }

    engine->Stop();
    if (rng.Percent(25)) {
      // Occasionally shut down cleanly; most generations crash.
      ASSERT_TRUE(engine->db().Close().ok());
    }
  }
}

}  // namespace
}  // namespace plp
