#include "src/engine/partitioned_engine.h"

#include <algorithm>
#include <cassert>

#include "src/engine/record_ops.h"
#include "src/storage/slotted_page.h"

namespace plp {

PartitionedEngine::PartitionedEngine(EngineConfig config)
    : Engine(config),
      pm_(&db_, config.num_workers,
          [this](Table* table, PartitionId partition, std::uint32_t uid,
                 Transaction* txn,
                 std::vector<std::function<Status()>>* undo_sink) {
            (void)partition;
            // Partitioned designs need no logical locks: the partition
            // worker is the only thread touching its data.
            return std::make_unique<BaseExecContext>(table, txn, db_.log(),
                                                     uid, undo_sink);
          }) {}

PartitionedEngine::~PartitionedEngine() { Stop(); }

void PartitionedEngine::Start() {
  ReopenGate();
  // Attach tables recovered from a durable catalog: reopen does not call
  // CreateTable, so routing/ownership wiring happens here. Boundaries come
  // from the recovered MRBTree partition metadata, so partition
  // assignments survive the crash intact.
  for (Table* table : db_.tables()) {
    if (pm_.HasTable(table)) continue;
    pm_.RegisterTable(table, table->primary()->boundaries());
    if (is_plp()) {
      WirePlpTable(table);
      RetagOwnedHeap(table);
    }
  }
  pm_.Start();
  // PLP page cleaning delegates to the owning partition's system queue
  // (Appendix A.4); the logical-only design cleans conventionally.
  PageCleaner::Delegate delegate;
  if (is_plp()) {
    delegate = [this](PageId pid) { return pm_.DelegateClean(pid); };
  }
  cleaner_ = std::make_unique<PageCleaner>(db_.pool(), std::move(delegate));
  cleaner_->Start();
}

void PartitionedEngine::Stop() {
  // Let in-flight submissions complete before tearing down the worker
  // queues, so no TxnHandle is left unresolved.
  DrainInflight();
  if (cleaner_) cleaner_->Stop();
  pm_.Stop();
  // Past this point submissions fail fast (pm_ not running) rather than
  // being gate-rejected, so reopen the drain-window gate.
  ReopenGate();
}

Result<Table*> PartitionedEngine::CreateTable(
    const std::string& name, std::vector<std::string> boundaries,
    bool clustered) {
  TableConfig config;
  config.name = name;
  config.clustered = clustered;
  switch (config_.design) {
    case SystemDesign::kLogical:
      config.index_policy = LatchPolicy::kLatched;
      config.heap_mode = HeapMode::kShared;
      config.index_boundaries = config_.use_mrbt
                                    ? boundaries
                                    : std::vector<std::string>{""};
      break;
    case SystemDesign::kPlpRegular:
      config.index_policy = LatchPolicy::kNone;
      config.heap_mode = HeapMode::kShared;
      config.index_boundaries = boundaries;
      break;
    case SystemDesign::kPlpPartition:
      config.index_policy = LatchPolicy::kNone;
      config.heap_mode = HeapMode::kPartitionOwned;
      config.index_boundaries = boundaries;
      break;
    case SystemDesign::kPlpLeaf:
      config.index_policy = LatchPolicy::kNone;
      config.heap_mode = HeapMode::kLeafOwned;
      config.index_boundaries = boundaries;
      break;
    case SystemDesign::kConventional:
      return Status::Internal("conventional design in PartitionedEngine");
  }
  if (clustered) {
    // Clustered tables have no heap file to partition; all three PLP
    // variants coincide (Appendix C.2) and no leaf hook is needed.
    config.heap_mode = HeapMode::kShared;
  }
  auto result = db_.CreateTable(std::move(config));
  if (!result.ok()) return result;
  Table* table = result.value();
  pm_.RegisterTable(table, std::move(boundaries));
  if (is_plp()) WirePlpTable(table);
  return table;
}

void PartitionedEngine::WirePlpTable(Table* table) {
  MRBTree* primary = table->primary();
  HeapFile* heap = table->heap();
  LogManager* log = db_.durable() ? db_.log() : nullptr;
  const std::uint32_t table_id = table->id();
  for (PartitionId p = 0; p < primary->num_partitions(); ++p) {
    BTree* sub = primary->subtree(p);
    sub->RetagPages(pm_.PartitionUid(table, p));
    if (table->config().heap_mode == HeapMode::kLeafOwned) {
      // Leaf splits must carry the pointed-to records along so each heap
      // page stays owned by exactly one leaf (Section 3.3). The tree runs
      // the crash-safe copy -> re-point -> release protocol: this hook
      // only copies (logging a system insert in durable mode); the
      // release hook below deletes the old location after the index entry
      // has been re-pointed and the re-point logged.
      sub->set_leaf_moved_hook(
          [heap, log, table_id](Slice key, Slice value,
                                PageId new_leaf) -> std::string {
            (void)key;
            std::string record;
            if (!heap->Get(RidFromBytes(value), &record).ok()) {
              return std::string();
            }
            Rid new_rid;
            Status st = heap->InsertOwned(
                new_leaf, record, &new_rid,
                SystemHeapLogHook(log, table_id, LogType::kHeapInsert,
                                  record));
            if (!st.ok()) return std::string();
            return RidToBytes(new_rid);
          });
      sub->set_leaf_moved_release_hook(
          [heap, log, table_id](Slice old_value) {
            (void)heap->Delete(
                RidFromBytes(old_value),
                SystemHeapLogHook(log, table_id, LogType::kHeapDelete,
                                  std::string()));
          });
    }
  }
}

void PartitionedEngine::RetagOwnedHeap(Table* table) {
  // Restart path: owner tags on recovered heap pages may predate the
  // crash's final leaf splits / repartitions, and partition uids are
  // assigned afresh per process. Re-derive each page's rightful owner
  // from the recovered index (ROADMAP: re-tag owned heap pages).
  if (table->config().clustered) return;
  const HeapMode mode = table->config().heap_mode;
  if (mode == HeapMode::kShared) return;
  MRBTree* primary = table->primary();
  HeapFile* heap = table->heap();
  std::unordered_map<PageId, std::uint32_t> owner_of;
  for (PartitionId p = 0; p < primary->num_partitions(); ++p) {
    BTree* sub = primary->subtree(p);
    const std::uint32_t uid = pm_.PartitionUid(table, p);
    sub->ForEachEntry([&](Slice key, Slice value) {
      const Rid rid = RidFromBytes(value);
      owner_of[rid.page_id] =
          mode == HeapMode::kLeafOwned ? sub->LeafFor(key) : uid;
    });
  }
  for (const auto& [pid, owner] : owner_of) heap->RetagPage(pid, owner);
}

Status PartitionedEngine::Repartition(
    const std::string& table_name,
    const std::vector<std::string>& boundaries) {
  Table* table = db_.GetTable(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("no table " + table_name);
  }
  pm_.Quiesce();
  Status st = Status::OK();

  if (is_plp()) {
    MRBTree* primary = table->primary();
    // Add missing boundaries (slice), then drop stale ones (meld).
    for (const std::string& b : boundaries) {
      if (b.empty()) continue;
      const auto current = primary->boundaries();
      if (std::find(current.begin(), current.end(), b) == current.end()) {
        st = primary->Split(b);
        if (!st.ok()) break;
      }
    }
    if (st.ok()) {
      for (;;) {
        const auto current = primary->boundaries();
        bool changed = false;
        for (const std::string& b : current) {
          if (b.empty()) continue;
          if (std::find(boundaries.begin(), boundaries.end(), b) ==
              boundaries.end()) {
            st = primary->Merge(primary->PartitionFor(b));
            changed = true;
            break;
          }
        }
        if (!st.ok() || !changed) break;
      }
    }
  }

  if (st.ok()) {
    pm_.SetRouting(table, boundaries);
    if (is_plp()) {
      WirePlpTable(table);
      if (table->config().heap_mode == HeapMode::kPartitionOwned) {
        std::uint64_t moved = 0;
        st = FixHeapOwnership(table, &moved);
      }
    }
  }

  pm_.Resume();
  return st;
}

Status PartitionedEngine::ParallelScan(
    const std::string& table_name,
    const std::function<void(Slice, Slice)>& fn) {
  Table* table = db_.GetTable(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("no table " + table_name);
  }
  MRBTree* primary = table->primary();
  HeapFile* heap = table->heap();
  const auto num_parts = primary->num_partitions();

  struct PartitionRows {
    Status status;
    std::vector<std::pair<std::string, std::string>> rows;
  };
  std::vector<PartitionRows> buffers(num_parts);
  CountdownEvent done(static_cast<int>(num_parts));

  const bool clustered = table->config().clustered;
  for (PartitionId p = 0; p < num_parts; ++p) {
    BTree* sub = primary->subtree(p);
    PartitionRows* out = &buffers[p];
    const std::uint32_t uid = pm_.PartitionUid(table, p);
    const int worker = pm_.WorkerForUid(uid);
    pm_.SubmitSystemTask(worker, [sub, heap, out, clustered, &done] {
      Status st = sub->ScanFrom(Slice(), [&](Slice key, Slice value) {
        if (clustered) {
          out->rows.emplace_back(key.ToString(), value.ToString());
          return true;
        }
        std::string payload;
        Status get = heap->Get(RidFromBytes(value), &payload);
        if (!get.ok()) {
          out->status = get;
          return false;
        }
        out->rows.emplace_back(key.ToString(), std::move(payload));
        return true;
      });
      if (!st.ok() && out->status.ok()) out->status = st;
      done.Signal();
    });
  }
  done.Wait();

  for (PartitionRows& buf : buffers) {
    PLP_RETURN_IF_ERROR(buf.status);
    for (const auto& [key, payload] : buf.rows) fn(key, payload);
  }
  return Status::OK();
}

Status PartitionedEngine::SecondaryLookup(
    const std::string& table_name, const std::string& index_name,
    Slice prefix,
    std::vector<std::pair<std::string, std::string>>* results) {
  Table* table = db_.GetTable(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("no table " + table_name);
  }
  Table::Secondary* sec = table->secondary(index_name);
  if (sec == nullptr) {
    return Status::InvalidArgument("no secondary index " + index_name);
  }

  // Conventional (latched) probe of the non-partition-aligned index; leaf
  // entries carry the primary key, which identifies the owning partition.
  std::vector<std::string> primary_keys;
  PLP_RETURN_IF_ERROR(
      sec->index->ScanFrom(prefix, [&](Slice skey, Slice pkey) {
        if (skey.size() < prefix.size() ||
            Slice(skey.data(), prefix.size()) != prefix) {
          return false;  // past the prefix range
        }
        primary_keys.push_back(pkey.ToString());
        return true;
      }));
  if (primary_keys.empty()) {
    results->clear();
    return Status::OK();
  }

  // Route each record access to the partition-owning thread.
  TxnRequest req;
  auto rows = std::make_shared<std::vector<std::string>>(primary_keys.size());
  for (std::size_t i = 0; i < primary_keys.size(); ++i) {
    const std::string key = primary_keys[i];
    std::string* slot = &(*rows)[i];
    req.Add(0, table_name, key, [key, slot, rows](ExecContext& ctx) {
      return ctx.Read(key, slot);
    });
  }
  PLP_RETURN_IF_ERROR(Execute(req));
  results->clear();
  for (std::size_t i = 0; i < primary_keys.size(); ++i) {
    results->emplace_back(std::move(primary_keys[i]), std::move((*rows)[i]));
  }
  return Status::OK();
}

Status PartitionedEngine::FixHeapOwnership(Table* table,
                                           std::uint64_t* moved) {
  MRBTree* primary = table->primary();
  HeapFile* heap = table->heap();
  BufferPool* pool = db_.pool();
  std::uint64_t count = 0;

  for (PartitionId p = 0; p < primary->num_partitions(); ++p) {
    const std::uint32_t uid = pm_.PartitionUid(table, p);
    BTree* sub = primary->subtree(p);

    struct Move {
      std::string key;
      Rid rid;
    };
    std::vector<Move> moves;
    sub->ForEachEntry([&](Slice key, Slice value) {
      const Rid rid = RidFromBytes(value);
      Page* page = pool->FixUnlocked(rid.page_id);
      if (page != nullptr && SlottedPage(page->data()).owner() != uid) {
        moves.push_back({key.ToString(), rid});
      }
    });
    LogManager* log = db_.durable() ? db_.log() : nullptr;
    for (const Move& m : moves) {
      // Crash-safe move ordering (durable mode): copy, re-point the index
      // entry (the tree logs the update), then release the old slot.
      std::string record;
      PLP_RETURN_IF_ERROR(heap->Get(m.rid, &record));
      Rid new_rid;
      PLP_RETURN_IF_ERROR(heap->InsertOwned(
          uid, record, &new_rid,
          SystemHeapLogHook(log, table->id(), LogType::kHeapInsert,
                            record)));
      PLP_RETURN_IF_ERROR(sub->Update(m.key, RidToBytes(new_rid)));
      PLP_RETURN_IF_ERROR(heap->Delete(
          m.rid, SystemHeapLogHook(log, table->id(), LogType::kHeapDelete,
                                   std::string())));
      ++count;
    }
  }
  if (moved != nullptr) *moved = count;
  return Status::OK();
}

}  // namespace plp
