#include "src/txn/recovery.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/database.h"
#include "src/storage/slotted_page.h"

namespace plp {

std::string RecoveryManager::EncodeIndexOp(Slice key, Slice value) {
  std::string out;
  const std::uint16_t klen = static_cast<std::uint16_t>(key.size());
  out.append(reinterpret_cast<const char*>(&klen), 2);
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());
  return out;
}

void RecoveryManager::DecodeIndexOp(Slice payload, std::string* key,
                                    std::string* value) {
  std::uint16_t klen;
  std::memcpy(&klen, payload.data(), 2);
  key->assign(payload.data() + 2, klen);
  value->assign(payload.data() + 2 + klen, payload.size() - 2 - klen);
}

namespace {

/// Formats a freshly-materialized (zeroed) frame exactly once.
void EnsureFormatted(Page* page) {
  SlottedPage sp(page->data());
  if (sp.slot_count() == 0 && sp.ContiguousFreeSpace() == 0) {
    SlottedPage::Init(page->data());
  }
}

}  // namespace

Status RecoveryManager::Recover(BTree* index, Stats* stats) {
  Stats local;

  // Pass 1: analysis.
  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> seen;
  PLP_RETURN_IF_ERROR(log_->Scan([&](Lsn, const LogRecord& rec) {
    if (rec.type == LogType::kCheckpoint) return;
    seen.insert(rec.txn);
    if (rec.type == LogType::kCommit) winners.insert(rec.txn);
  }));
  local.winners = winners.size();
  local.losers = seen.size() - winners.size();

  // Pass 2: redo heap history; collect loser ops for undo; replay winner
  // index ops logically. Also remember the newest committed write per RID
  // so the undo pass never clobbers a committed record that reused a slot
  // freed by a runtime abort.
  struct LoserOp {
    LogType type;
    Rid rid;
    Lsn lsn;
    std::string undo;
  };
  std::vector<LoserOp> loser_ops;
  std::unordered_map<Rid, Lsn> last_committed;

  auto heap_page = [&](PageId pid) {
    Page* page = pool_->NewPageWithId(pid, PageClass::kHeap);
    EnsureFormatted(page);
    return page;
  };

  Status replay_status = Status::OK();
  PLP_RETURN_IF_ERROR(log_->Scan([&](Lsn lsn, const LogRecord& rec) {
    if (!replay_status.ok()) return;
    switch (rec.type) {
      case LogType::kHeapInsert:
      case LogType::kHeapUpdate: {
        Page* page = heap_page(rec.rid.page_id);
        replay_status = SlottedPage(page->data()).PutAt(rec.rid.slot, rec.redo);
        page->MarkDirty();
        local.redo_ops++;
        break;
      }
      case LogType::kHeapDelete: {
        Page* page = heap_page(rec.rid.page_id);
        // Idempotent: deleting an already-free slot is fine.
        (void)SlottedPage(page->data()).Delete(rec.rid.slot);
        page->MarkDirty();
        local.redo_ops++;
        break;
      }
      case LogType::kIndexInsert:
      case LogType::kIndexDelete: {
        if (index != nullptr && winners.count(rec.txn) > 0) {
          std::string key, value;
          DecodeIndexOp(rec.redo.empty() ? rec.undo : rec.redo, &key, &value);
          if (rec.type == LogType::kIndexInsert) {
            Status st = index->Insert(key, value);
            if (st.IsAlreadyExists()) st = index->Update(key, value);
            replay_status = st;
          } else {
            Status st = index->Delete(key);
            if (!st.IsNotFound()) replay_status = st;
          }
          local.index_ops++;
        }
        break;
      }
      default:
        break;
    }
    if (replay_status.ok()) {
      switch (rec.type) {
        case LogType::kHeapInsert:
        case LogType::kHeapUpdate:
        case LogType::kHeapDelete:
          if (winners.count(rec.txn) == 0) {
            loser_ops.push_back({rec.type, rec.rid, lsn, rec.undo});
          } else {
            last_committed[rec.rid] = lsn;
          }
          break;
        default:
          break;
      }
    }
  }));
  PLP_RETURN_IF_ERROR(replay_status);

  // Pass 3: undo losers newest-first.
  for (auto it = loser_ops.rbegin(); it != loser_ops.rend(); ++it) {
    auto committed_it = last_committed.find(it->rid);
    if (committed_it != last_committed.end() &&
        committed_it->second > it->lsn) {
      continue;  // a later committed write owns this slot now
    }
    Page* page = heap_page(it->rid.page_id);
    SlottedPage sp(page->data());
    switch (it->type) {
      case LogType::kHeapInsert:
        (void)sp.Delete(it->rid.slot);
        break;
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete:
        PLP_RETURN_IF_ERROR(sp.PutAt(it->rid.slot, it->undo));
        break;
      default:
        break;
    }
    page->MarkDirty();
    local.undo_ops++;
  }

  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status RecoveryManager::RecoverDatabase(Database* db, bool has_checkpoint,
                                        Lsn checkpoint_lsn,
                                        const CheckpointImage& image,
                                        Stats* stats) {
  Stats local;

  std::unordered_map<std::uint32_t, Table*> tables_by_id;
  for (Table* t : db->tables()) tables_by_id[t->id()] = t;

  // Load the checkpoint's primary-index snapshots.
  if (has_checkpoint) {
    for (const CheckpointImage::TableSnapshot& snap : image.tables) {
      auto it = tables_by_id.find(snap.table_id);
      if (it == tables_by_id.end()) continue;
      MRBTree* primary = it->second->primary();
      for (const auto& [key, value] : snap.entries) {
        Status st = primary->Insert(key, value);
        if (st.IsAlreadyExists()) st = primary->Update(key, value);
        PLP_RETURN_IF_ERROR(st);
      }
    }
  }

  const Lsn scan_start =
      has_checkpoint ? image.ScanStart(checkpoint_lsn) : 0;
  local.scan_start = scan_start;

  // Pass 1: analysis over [scan_start, end). Transactions active at the
  // checkpoint are in-flight by definition; records tell us who finished.
  std::unordered_set<TxnId> committed;
  std::unordered_map<TxnId, Lsn> abort_lsn;
  std::unordered_set<TxnId> seen;
  TxnId max_txn_id = 0;
  for (const auto& [txn, begin] : image.active_txns) seen.insert(txn);
  PLP_RETURN_IF_ERROR(log_->ScanFrom(scan_start, [&](Lsn lsn,
                                                     const LogRecord& rec) {
    if (rec.type == LogType::kCheckpoint) return;
    seen.insert(rec.txn);
    max_txn_id = std::max(max_txn_id, rec.txn);
    if (rec.type == LogType::kCommit) committed.insert(rec.txn);
    if (rec.type == LogType::kAbort) abort_lsn[rec.txn] = lsn;
  }));
  local.winners = committed.size();
  local.losers = seen.size() - committed.size();

  // Pass 2: redo. Heap history is repeated for every transaction (value
  // replay is idempotent against whatever page state the data file holds);
  // index ops are applied for committed transactions only, on top of the
  // snapshot. Loser bookkeeping feeds the undo passes below.
  struct LoserHeapOp {
    LogType type;
    Rid rid;
    Lsn lsn;
    std::uint32_t table;
    std::string undo;
  };
  struct LoserIndexOp {
    LogType type;
    TxnId txn;
    Lsn lsn;
    std::uint32_t table;
    std::string payload;  // EncodeIndexOp(key, value)
  };
  std::vector<LoserHeapOp> loser_heap;
  std::vector<LoserIndexOp> loser_index;
  std::unordered_map<Rid, Lsn> last_committed;

  auto heap_page = [&](const LogRecord& rec) {
    const PageId pid = rec.rid.page_id;
    Page* page = pool_->Fix(pid);  // resident or on disk
    if (page == nullptr) {
      page = pool_->NewPageWithId(pid, PageClass::kHeap);
      page->set_table_tag(rec.table);
    }
    EnsureFormatted(page);
    auto it = tables_by_id.find(rec.table);
    if (it != tables_by_id.end()) {
      it->second->heap()->AdoptPage(pid, SlottedPage(page->data()).owner());
    }
    return page;
  };

  Status replay_status = Status::OK();
  PLP_RETURN_IF_ERROR(log_->ScanFrom(scan_start, [&](Lsn lsn,
                                                     const LogRecord& rec) {
    if (!replay_status.ok()) return;
    switch (rec.type) {
      case LogType::kHeapInsert:
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete: {
        Page* page = heap_page(rec);
        // ARIES redo gate: a page stolen after this record already holds
        // its effect (page_lsn from the slot header covers it); replaying
        // anyway is not just wasted work — an old large record may no
        // longer fit the newer image and would abort recovery.
        if (lsn > page->page_lsn()) {
          SlottedPage sp(page->data());
          if (rec.type == LogType::kHeapDelete) {
            (void)sp.Delete(rec.rid.slot);
          } else {
            replay_status = sp.PutAt(rec.rid.slot, rec.redo);
          }
          page->StampUpdate(lsn);
          local.redo_ops++;
        }
        if (committed.count(rec.txn) > 0) {
          last_committed[rec.rid] = lsn;
        } else {
          loser_heap.push_back({rec.type, rec.rid, lsn, rec.table, rec.undo});
        }
        break;
      }
      case LogType::kIndexInsert:
      case LogType::kIndexDelete: {
        auto it = tables_by_id.find(rec.table);
        if (it == tables_by_id.end()) break;
        if (committed.count(rec.txn) > 0) {
          MRBTree* primary = it->second->primary();
          std::string key, value;
          DecodeIndexOp(rec.redo.empty() ? rec.undo : rec.redo, &key, &value);
          if (rec.type == LogType::kIndexInsert) {
            Status st = primary->Insert(key, value);
            if (st.IsAlreadyExists()) st = primary->Update(key, value);
            replay_status = st;
          } else {
            Status st = primary->Delete(key);
            if (!st.IsNotFound()) replay_status = st;
          }
          local.index_ops++;
        } else if (has_checkpoint && lsn < checkpoint_lsn) {
          // A loser op baked into the index snapshot: needs reversal,
          // unless the transaction's runtime abort (and therefore its
          // logical compensation) happened before the snapshot was taken.
          loser_index.push_back({rec.type, rec.txn, lsn, rec.table,
                                 rec.redo.empty() ? rec.undo : rec.redo});
        }
        break;
      }
      default:
        break;
    }
  }));
  PLP_RETURN_IF_ERROR(replay_status);

  // Pass 3a: reverse loser index ops that the snapshot reflects.
  for (auto it = loser_index.rbegin(); it != loser_index.rend(); ++it) {
    auto ab = abort_lsn.find(it->txn);
    if (ab != abort_lsn.end() && ab->second < checkpoint_lsn) {
      continue;  // compensated before the snapshot; already clean
    }
    auto table_it = tables_by_id.find(it->table);
    if (table_it == tables_by_id.end()) continue;
    MRBTree* primary = table_it->second->primary();
    std::string key, value;
    DecodeIndexOp(it->payload, &key, &value);
    if (it->type == LogType::kIndexInsert) {
      (void)primary->Delete(key);
    } else {
      Status st = primary->Insert(key, value);
      if (st.IsAlreadyExists()) (void)primary->Update(key, value);
    }
    local.index_ops++;
  }

  // Pass 3b: undo loser heap ops newest-first from before-images; a later
  // committed write to the same RID wins.
  for (auto it = loser_heap.rbegin(); it != loser_heap.rend(); ++it) {
    auto committed_it = last_committed.find(it->rid);
    if (committed_it != last_committed.end() &&
        committed_it->second > it->lsn) {
      continue;
    }
    Page* page = pool_->Fix(it->rid.page_id);
    if (page == nullptr) continue;  // never materialized: nothing to undo
    SlottedPage sp(page->data());
    switch (it->type) {
      case LogType::kHeapInsert:
        (void)sp.Delete(it->rid.slot);
        break;
      case LogType::kHeapUpdate:
      case LogType::kHeapDelete:
        PLP_RETURN_IF_ERROR(sp.PutAt(it->rid.slot, it->undo));
        break;
      default:
        break;
    }
    page->MarkDirty();
    local.undo_ops++;
  }

  db->txns()->EnsureNextIdAtLeast(
      std::max(image.next_txn_id, max_txn_id + 1));

  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace plp
